// Solvable 3-coloring generator: structural and statistical properties.
#include <gtest/gtest.h>

#include <set>

#include "gen/coloring_gen.h"
#include "solver/backtracking.h"

namespace discsp::gen {
namespace {

TEST(ColoringGen, ProducesRequestedShape) {
  Rng rng(1);
  const auto inst = generate_coloring3(30, rng);
  EXPECT_EQ(inst.problem.num_variables(), 30);
  EXPECT_EQ(inst.edges.size(), 81u);  // round(2.7 * 30)
  EXPECT_EQ(inst.problem.num_nogoods(), 3 * inst.edges.size());
  EXPECT_EQ(inst.num_colors, 3);
}

TEST(ColoringGen, PlantedPartitionIsAWitness) {
  Rng rng(2);
  for (int n : {12, 30, 60}) {
    const auto inst = generate_coloring3(n, rng);
    EXPECT_TRUE(inst.problem.is_solution(inst.planted)) << "n=" << n;
  }
}

TEST(ColoringGen, EdgesAreDistinctAndCrossClass) {
  Rng rng(3);
  const auto inst = generate_coloring3(40, rng);
  std::set<std::pair<VarId, VarId>> seen;
  for (const auto& [u, v] : inst.edges) {
    EXPECT_LT(u, v);
    EXPECT_TRUE(seen.insert({u, v}).second) << "duplicate edge";
    EXPECT_NE(inst.planted[static_cast<std::size_t>(u)],
              inst.planted[static_cast<std::size_t>(v)]);
  }
}

TEST(ColoringGen, BalancedClasses) {
  Rng rng(4);
  const auto inst = generate_coloring3(31, rng);  // 31 = 3*10 + 1
  std::array<int, 3> counts{};
  for (Value c : inst.planted) ++counts[static_cast<std::size_t>(c)];
  EXPECT_GE(*std::min_element(counts.begin(), counts.end()), 10);
  EXPECT_LE(*std::max_element(counts.begin(), counts.end()), 11);
}

TEST(ColoringGen, SolvableByIndependentSolver) {
  Rng rng(5);
  const auto inst = generate_coloring3(15, rng);
  EXPECT_TRUE(solve_backtracking(inst.problem).has_value());
}

TEST(ColoringGen, DeterministicGivenSeed) {
  Rng a(77), b(77);
  const auto i1 = generate_coloring3(25, a);
  const auto i2 = generate_coloring3(25, b);
  EXPECT_EQ(i1.edges, i2.edges);
  EXPECT_EQ(i1.planted, i2.planted);
}

TEST(ColoringGen, CustomParameters) {
  Rng rng(6);
  ColoringParams params;
  params.n = 20;
  params.edge_ratio = 1.5;
  params.num_colors = 4;
  const auto inst = generate_coloring(params, rng);
  EXPECT_EQ(inst.edges.size(), 30u);
  EXPECT_EQ(inst.problem.domain_size(0), 4);
  EXPECT_EQ(inst.problem.num_nogoods(), 4 * 30u);
}

TEST(ColoringGen, RejectsImpossibleRequests) {
  Rng rng(7);
  ColoringParams params;
  params.n = 4;
  params.edge_ratio = 10.0;  // 40 edges from at most 5 cross pairs
  EXPECT_THROW(generate_coloring(params, rng), std::invalid_argument);
  params.n = 1;
  EXPECT_THROW(generate_coloring(params, rng), std::invalid_argument);
}

TEST(ColoringGen, DistributeGivesOneAgentPerNode) {
  Rng rng(8);
  const auto inst = generate_coloring3(12, rng);
  const auto dp = distribute(inst);
  EXPECT_TRUE(dp.is_one_var_per_agent());
  EXPECT_EQ(dp.num_agents(), 12);
}

}  // namespace
}  // namespace discsp::gen
