// TextTable rendering and Options/ReproConfig parsing.
#include <gtest/gtest.h>

#include <cstdlib>

#include "common/options.h"
#include "common/table.h"

namespace discsp {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t({"n", "value"});
  t.row().cell("9").cell(1.25, 1);
  t.row().cell("100").cell(12345LL);
  const std::string out = t.str();
  EXPECT_NE(out.find("n"), std::string::npos);
  EXPECT_NE(out.find("1.2"), std::string::npos);   // one decimal
  EXPECT_NE(out.find("12345"), std::string::npos);
  // Header separator line exists.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTable, FixedFormatting) {
  EXPECT_EQ(format_fixed(1.25, 1), "1.2");  // round-to-even banker's? printf: 1.2
  EXPECT_EQ(format_fixed(1.0, 0), "1");
  EXPECT_EQ(format_fixed(-2.5, 1), "-2.5");
}

TEST(Options, ParsesEqualsAndSpaceForms) {
  // Note: the space form is greedy — "--flag value" binds value to the flag,
  // so bare boolean flags must use "--flag=1" or sit last / before another
  // "--" token. Positionals therefore come before flags or after "=" forms.
  const char* argv[] = {"prog", "pos1", "--alpha=3", "--beta", "4", "--flag"};
  Options opts(6, argv);
  EXPECT_EQ(opts.get_int("alpha", 0), 3);
  EXPECT_EQ(opts.get_int("beta", 0), 4);
  EXPECT_TRUE(opts.get_bool("flag", false));
  ASSERT_EQ(opts.positional().size(), 1u);
  EXPECT_EQ(opts.positional()[0], "pos1");
}

TEST(Options, SpaceFormIsGreedy) {
  const char* argv[] = {"prog", "--flag", "pos1"};
  Options opts(3, argv);
  EXPECT_EQ(opts.get_string("flag", ""), "pos1");
  EXPECT_TRUE(opts.positional().empty());
}

TEST(Options, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  Options opts(1, argv);
  EXPECT_EQ(opts.get_int("missing", 17), 17);
  EXPECT_EQ(opts.get_double("missing", 2.5), 2.5);
  EXPECT_EQ(opts.get_string("missing", "x"), "x");
  EXPECT_FALSE(opts.get_bool("missing", false));
}

TEST(Options, BadIntegerThrows) {
  const char* argv[] = {"prog", "--alpha=notanumber"};
  Options opts(2, argv);
  EXPECT_THROW(opts.get_int("alpha", 0), std::invalid_argument);
}

TEST(Options, EnvironmentFallback) {
  ::setenv("DISCSP_TEST_OPT", "123", 1);
  const char* argv[] = {"prog"};
  Options opts(1, argv);
  EXPECT_EQ(opts.get_int("whatever", 0, "DISCSP_TEST_OPT"), 123);
  // Explicit flag beats environment.
  const char* argv2[] = {"prog", "--whatever=5"};
  Options opts2(2, argv2);
  EXPECT_EQ(opts2.get_int("whatever", 0, "DISCSP_TEST_OPT"), 5);
  ::unsetenv("DISCSP_TEST_OPT");
}

TEST(Options, BoolishValues) {
  const char* argv[] = {"prog", "--a=0", "--b=false", "--c=off", "--d=yes"};
  Options opts(5, argv);
  EXPECT_FALSE(opts.get_bool("a", true));
  EXPECT_FALSE(opts.get_bool("b", true));
  EXPECT_FALSE(opts.get_bool("c", true));
  EXPECT_TRUE(opts.get_bool("d", false));
}

TEST(ReproConfig, Defaults) {
  const char* argv[] = {"prog"};
  const auto cfg = repro_config_from(Options(1, argv));
  EXPECT_EQ(cfg.trials, 20);
  EXPECT_EQ(cfg.max_cycles, 10000);
}

TEST(ReproConfig, FullRestoresPaperScale) {
  const char* argv[] = {"prog", "--full"};
  const auto cfg = repro_config_from(Options(2, argv));
  EXPECT_EQ(cfg.trials, 100);
}

TEST(ReproConfig, ExplicitTrialsBeatFull) {
  const char* argv[] = {"prog", "--full", "--trials=7"};
  const auto cfg = repro_config_from(Options(3, argv));
  EXPECT_EQ(cfg.trials, 7);
}

TEST(ReproConfig, RejectsNonPositive) {
  const char* argv[] = {"prog", "--trials=0"};
  EXPECT_THROW(repro_config_from(Options(2, argv)), std::invalid_argument);
  const char* argv2[] = {"prog", "--max-cycles=-5"};
  EXPECT_THROW(repro_config_from(Options(2, argv2)), std::invalid_argument);
}

}  // namespace
}  // namespace discsp
