// TextTable rendering and Options/ReproConfig parsing.
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "common/options.h"
#include "common/table.h"

namespace discsp {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t({"n", "value"});
  t.row().cell("9").cell(1.25, 1);
  t.row().cell("100").cell(12345LL);
  const std::string out = t.str();
  EXPECT_NE(out.find("n"), std::string::npos);
  EXPECT_NE(out.find("1.2"), std::string::npos);   // one decimal
  EXPECT_NE(out.find("12345"), std::string::npos);
  // Header separator line exists.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTable, FixedFormatting) {
  EXPECT_EQ(format_fixed(1.25, 1), "1.2");  // round-to-even banker's? printf: 1.2
  EXPECT_EQ(format_fixed(1.0, 0), "1");
  EXPECT_EQ(format_fixed(-2.5, 1), "-2.5");
}

TEST(Options, ParsesEqualsAndSpaceForms) {
  // Note: the space form is greedy — "--flag value" binds value to the flag,
  // so bare boolean flags must use "--flag=1" or sit last / before another
  // "--" token. Positionals therefore come before flags or after "=" forms.
  const char* argv[] = {"prog", "pos1", "--alpha=3", "--beta", "4", "--flag"};
  Options opts(6, argv);
  EXPECT_EQ(opts.get_int("alpha", 0), 3);
  EXPECT_EQ(opts.get_int("beta", 0), 4);
  EXPECT_TRUE(opts.get_bool("flag", false));
  ASSERT_EQ(opts.positional().size(), 1u);
  EXPECT_EQ(opts.positional()[0], "pos1");
}

TEST(Options, SpaceFormIsGreedy) {
  const char* argv[] = {"prog", "--flag", "pos1"};
  Options opts(3, argv);
  EXPECT_EQ(opts.get_string("flag", ""), "pos1");
  EXPECT_TRUE(opts.positional().empty());
}

TEST(Options, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  Options opts(1, argv);
  EXPECT_EQ(opts.get_int("missing", 17), 17);
  EXPECT_EQ(opts.get_double("missing", 2.5), 2.5);
  EXPECT_EQ(opts.get_string("missing", "x"), "x");
  EXPECT_FALSE(opts.get_bool("missing", false));
}

TEST(Options, BadIntegerThrows) {
  const char* argv[] = {"prog", "--alpha=notanumber"};
  Options opts(2, argv);
  EXPECT_THROW(opts.get_int("alpha", 0), std::invalid_argument);
}

TEST(Options, EnvironmentFallback) {
  ::setenv("DISCSP_TEST_OPT", "123", 1);
  const char* argv[] = {"prog"};
  Options opts(1, argv);
  EXPECT_EQ(opts.get_int("whatever", 0, "DISCSP_TEST_OPT"), 123);
  // Explicit flag beats environment.
  const char* argv2[] = {"prog", "--whatever=5"};
  Options opts2(2, argv2);
  EXPECT_EQ(opts2.get_int("whatever", 0, "DISCSP_TEST_OPT"), 5);
  ::unsetenv("DISCSP_TEST_OPT");
}

TEST(Options, BoolishValues) {
  const char* argv[] = {"prog", "--a=0", "--b=false", "--c=off", "--d=yes"};
  Options opts(5, argv);
  EXPECT_FALSE(opts.get_bool("a", true));
  EXPECT_FALSE(opts.get_bool("b", true));
  EXPECT_FALSE(opts.get_bool("c", true));
  EXPECT_TRUE(opts.get_bool("d", false));
}

TEST(ReproConfig, Defaults) {
  const char* argv[] = {"prog"};
  const auto cfg = repro_config_from(Options(1, argv));
  EXPECT_EQ(cfg.trials, 20);
  EXPECT_EQ(cfg.max_cycles, 10000);
}

TEST(ReproConfig, FullRestoresPaperScale) {
  const char* argv[] = {"prog", "--full"};
  const auto cfg = repro_config_from(Options(2, argv));
  EXPECT_EQ(cfg.trials, 100);
}

TEST(ReproConfig, ExplicitTrialsBeatFull) {
  const char* argv[] = {"prog", "--full", "--trials=7"};
  const auto cfg = repro_config_from(Options(3, argv));
  EXPECT_EQ(cfg.trials, 7);
}

TEST(ReproConfig, RejectsNonPositive) {
  const char* argv[] = {"prog", "--trials=0"};
  EXPECT_THROW(repro_config_from(Options(2, argv)), std::invalid_argument);
  const char* argv2[] = {"prog", "--max-cycles=-5"};
  EXPECT_THROW(repro_config_from(Options(2, argv2)), std::invalid_argument);
}

TEST(ReproConfig, RejectsOutOfRangeFaultRates) {
  // Every --fault-* probability is validated into [0, 1] with a clear error.
  const auto reject = [](const char* flag) {
    const char* argv[] = {"prog", flag};
    EXPECT_THROW(repro_config_from(Options(2, argv)), std::invalid_argument)
        << flag << " was accepted";
  };
  reject("--fault-drop=1.5");
  reject("--fault-drop=-0.1");
  reject("--fault-duplicate=2");
  reject("--fault-reorder=-1");
  reject("--fault-corrupt=1.01");
  reject("--fault-corrupt=-0.5");
  reject("--fault-crash=7");
  reject("--fault-amnesia=-0.2");

  // Boundary values are legal.
  const char* argv[] = {"prog", "--fault-drop=1", "--fault-corrupt=0"};
  const ReproConfig config = repro_config_from(Options(3, argv));
  EXPECT_EQ(config.fault_drop, 1.0);
  EXPECT_EQ(config.fault_corrupt, 0.0);
}

TEST(ReproConfig, RejectsBadPartitionAndQuarantineKnobs) {
  const auto reject = [](std::vector<const char*> extra) {
    std::vector<const char*> argv{"prog"};
    argv.insert(argv.end(), extra.begin(), extra.end());
    EXPECT_THROW(
        repro_config_from(Options(static_cast<int>(argv.size()), argv.data())),
        std::invalid_argument)
        << extra.front() << " was accepted";
  };
  reject({"--partition-interval=-1"});
  reject({"--partition-duration=-5"});
  // Duration longer than the interval would overlap episodes.
  reject({"--partition-interval=100", "--partition-duration=200"});
  reject({"--partition-groups=1"});
  reject({"--partition-groups=0"});
  reject({"--quarantine-budget=-1"});
  reject({"--quarantine-duration=-1"});
  reject({"--fault-refresh=-10"});
  reject({"--monitor-stall=-1"});

  // A sane chaos cell parses and lands in the right fields.
  const char* argv[] = {"prog", "--partition-interval=400",
                        "--partition-duration=150", "--partition-groups=3",
                        "--quarantine-budget=4", "--quarantine-duration=250",
                        "--monitor=1", "--monitor-stall=1000",
                        "--fault-corrupt=0.01"};
  const ReproConfig config = repro_config_from(Options(9, argv));
  EXPECT_EQ(config.partition_interval, 400);
  EXPECT_EQ(config.partition_duration, 150);
  EXPECT_EQ(config.partition_groups, 3);
  EXPECT_EQ(config.quarantine_budget, 4);
  EXPECT_EQ(config.quarantine_duration, 250);
  EXPECT_TRUE(config.monitor);
  EXPECT_EQ(config.monitor_stall, 1000);
  EXPECT_EQ(config.fault_corrupt, 0.01);
}

TEST(NetConfig, BatchCloseFlushAndMigrationKnobsParseAndDefault) {
  // Defaults: the 50 ms close() final-flush budget, migration off.
  const char* plain[] = {"prog"};
  const NetConfig defaults = net_config_from(Options(1, plain));
  EXPECT_EQ(defaults.batch_close_flush_ms, 50);
  EXPECT_FALSE(defaults.migrate_after_dead);
  EXPECT_EQ(defaults.migration_max_batch, 8);

  const char* argv[] = {"prog", "--batch-close-flush-ms=120",
                        "--migrate-after-dead", "--migration-max-batch=3"};
  const NetConfig cfg = net_config_from(Options(4, argv));
  EXPECT_EQ(cfg.batch_close_flush_ms, 120);
  EXPECT_TRUE(cfg.migrate_after_dead);
  EXPECT_EQ(cfg.migration_max_batch, 3);

  // 0 is legal for the close flush (shed the queue, close immediately).
  const char* zero[] = {"prog", "--batch-close-flush-ms=0"};
  EXPECT_EQ(net_config_from(Options(2, zero)).batch_close_flush_ms, 0);
}

TEST(NetConfig, RejectsBadBatchCloseFlushAndMigrationKnobs) {
  const auto reject = [](const char* flag) {
    const char* argv[] = {"prog", flag};
    EXPECT_THROW(net_config_from(Options(2, argv)), std::invalid_argument)
        << flag << " was accepted";
  };
  reject("--batch-close-flush-ms=-1");
  reject("--migration-max-batch=0");
  reject("--migration-max-batch=-4");
}

}  // namespace
}  // namespace discsp
