// Mcs-based learning: minimality, minimum-cardinality, budget fallback, and
// cost accounting.
#include <gtest/gtest.h>

#include "learning/mcs.h"
#include "learning/resolvent.h"

namespace discsp::learning {
namespace {

class FlatOrder final : public PriorityOrder {
 public:
  Priority priority_of(VarId) const override { return 0; }
};

/// Helper assembling a deadend context over the given per-value violated
/// nogoods (with higher == violated, which is a legal configuration).
struct Deadend {
  std::vector<std::vector<const Nogood*>> violated;
  FlatOrder order;
  DeadendContext ctx;

  explicit Deadend(std::vector<std::vector<const Nogood*>> v, VarId own, int domain)
      : violated(std::move(v)) {
    ctx.own = own;
    ctx.domain_size = domain;
    ctx.violated = violated;
    ctx.order = &order;
  }
};

TEST(Mcs, ShrinksBelowTheResolventWhenPossible) {
  // Value 0 is ruled out by two alternatives: one via x1, one via x2.
  // Value 1 is ruled out via x2 only. Resolvent selection takes the first
  // smallest for value 0 (x1), giving {x1, x2}; the minimum conflict set is
  // just {x2}.
  Nogood v0_a{{1, 0}, {9, 0}};
  Nogood v0_b{{2, 0}, {9, 0}};
  Nogood v1{{2, 0}, {9, 1}};
  Deadend d({{&v0_a, &v0_b}, {&v1}}, 9, 2);

  std::uint64_t checks = 0;
  EXPECT_EQ(build_resolvent(d.ctx), (Nogood{{1, 0}, {2, 0}}));
  McsLearning mcs;
  const auto learned = mcs.learn(d.ctx, checks);
  ASSERT_TRUE(learned.has_value());
  EXPECT_EQ(*learned, (Nogood{{2, 0}})) << "the minimum conflict set is {x2}";
  EXPECT_GT(checks, 0u);
}

TEST(Mcs, ReturnsResolventWhenAlreadyMinimum) {
  Nogood v0{{1, 0}, {9, 0}};
  Nogood v1{{2, 0}, {9, 1}};
  Deadend d({{&v0}, {&v1}}, 9, 2);
  std::uint64_t checks = 0;
  McsLearning mcs;
  const auto learned = mcs.learn(d.ctx, checks);
  ASSERT_TRUE(learned.has_value());
  EXPECT_EQ(*learned, (Nogood{{1, 0}, {2, 0}}));
}

TEST(Mcs, ResultIsAlwaysAConflictSet) {
  // Every value must remain supported by some source inside the result.
  Nogood a{{1, 0}, {2, 1}, {9, 0}};
  Nogood b{{2, 1}, {3, 0}, {9, 1}};
  Nogood c{{1, 0}, {9, 2}};
  Deadend d({{&a}, {&b}, {&c}}, 9, 3);
  std::uint64_t checks = 0;
  McsLearning mcs;
  const auto learned = mcs.learn(d.ctx, checks);
  ASSERT_TRUE(learned.has_value());
  // {x1, x2, x3} is the resolvent; minimum must still cover all three values.
  for (const auto& violated : d.violated) {
    bool supported = false;
    for (const Nogood* ng : violated) {
      if (ng->without(9).subset_of(*learned)) supported = true;
    }
    EXPECT_TRUE(supported);
  }
}

TEST(Mcs, UnaryResolventPassesThrough) {
  Nogood v0{{1, 0}, {9, 0}};
  Nogood v1{{1, 0}, {9, 1}};
  Deadend d({{&v0}, {&v1}}, 9, 2);
  std::uint64_t checks = 0;
  McsLearning mcs;
  const auto learned = mcs.learn(d.ctx, checks);
  ASSERT_TRUE(learned.has_value());
  EXPECT_EQ(*learned, (Nogood{{1, 0}}));
}

TEST(Mcs, TinyBudgetStillYieldsMinimalConflictSet) {
  // With budget 1 the descending sweep dies immediately and the greedy
  // fallback must still produce a *minimal* set.
  Nogood v0_a{{1, 0}, {9, 0}};
  Nogood v0_b{{2, 0}, {9, 0}};
  Nogood v1{{2, 0}, {9, 1}};
  Deadend d({{&v0_a, &v0_b}, {&v1}}, 9, 2);
  std::uint64_t checks = 0;
  McsLearning mcs(/*budget=*/1);
  const auto learned = mcs.learn(d.ctx, checks);
  ASSERT_TRUE(learned.has_value());
  EXPECT_EQ(*learned, (Nogood{{2, 0}})) << "greedy elimination reaches {x2} here";
}

TEST(Mcs, ChecksScaleWithCandidatePoolSize) {
  // Doubling the candidate pool (irrelevant extra nogoods) must increase
  // the metered checks: the subset search pays for examining them. The junk
  // nogoods are same-sized but weaker-prioritized (larger ids), so resolvent
  // selection ignores them and both scenarios shrink the same resolvent.
  Nogood v0{{1, 0}, {2, 0}, {9, 0}};
  Nogood v1{{1, 0}, {3, 0}, {9, 1}};
  Nogood junk0{{6, 1}, {7, 1}, {9, 0}};  // outside-resolvent vars: examined, useless
  Nogood junk1{{6, 1}, {8, 1}, {9, 1}};

  Deadend small({{&v0}, {&v1}}, 9, 2);
  std::uint64_t checks_small = 0;
  McsLearning().learn(small.ctx, checks_small);

  Deadend big({{&v0, &junk0}, {&v1, &junk1}}, 9, 2);
  std::uint64_t checks_big = 0;
  McsLearning().learn(big.ctx, checks_big);

  EXPECT_GT(checks_big, checks_small);
}

TEST(Mcs, NameAndClone) {
  McsLearning mcs(123);
  EXPECT_EQ(mcs.name(), "Mcs");
  auto clone = mcs.clone();
  EXPECT_EQ(clone->name(), "Mcs");
  EXPECT_EQ(dynamic_cast<McsLearning&>(*clone).budget(), 123u);
}

}  // namespace
}  // namespace discsp::learning
