// Planted-satisfiable 3SAT generator (the 3SAT-GEN stand-in).
#include <gtest/gtest.h>

#include <set>

#include "gen/sat_gen.h"
#include "solver/model_counter.h"

namespace discsp::gen {
namespace {

TEST(SatGen, ProducesRequestedShape) {
  Rng rng(1);
  const auto inst = generate_sat3(50, rng);
  EXPECT_EQ(inst.cnf.num_vars(), 50);
  EXPECT_EQ(inst.cnf.num_clauses(), 215u);  // round(4.3 * 50)
  for (const auto& clause : inst.cnf.clauses()) {
    EXPECT_EQ(clause.size(), 3u);
    EXPECT_FALSE(clause.is_tautology());
  }
}

TEST(SatGen, PlantedAssignmentIsAModel) {
  Rng rng(2);
  for (int n : {10, 30, 60}) {
    const auto inst = generate_sat3(n, rng);
    EXPECT_TRUE(inst.cnf.satisfied_by(inst.planted)) << "n=" << n;
  }
}

TEST(SatGen, SatisfiableByIndependentSolver) {
  Rng rng(3);
  const auto inst = generate_sat3(25, rng);
  EXPECT_TRUE(sat::is_satisfiable(inst.cnf));
}

TEST(SatGen, ClausesAreDistinct) {
  Rng rng(4);
  const auto inst = generate_sat3(40, rng);
  std::set<std::vector<std::uint32_t>> seen;
  for (const auto& clause : inst.cnf.clauses()) {
    std::vector<std::uint32_t> key;
    for (sat::Lit l : clause) key.push_back(l.code());
    EXPECT_TRUE(seen.insert(key).second);
  }
}

TEST(SatGen, DeterministicGivenSeed) {
  Rng a(5), b(5);
  const auto i1 = generate_sat3(20, a);
  const auto i2 = generate_sat3(20, b);
  EXPECT_EQ(i1.planted, i2.planted);
  ASSERT_EQ(i1.cnf.num_clauses(), i2.cnf.num_clauses());
  for (std::size_t i = 0; i < i1.cnf.num_clauses(); ++i) {
    EXPECT_EQ(i1.cnf.clauses()[i], i2.cnf.clauses()[i]);
  }
}

TEST(SatGen, CustomClauseSizeAndRatio) {
  Rng rng(6);
  SatParams params;
  params.n = 20;
  params.clause_ratio = 2.0;
  params.clause_size = 2;
  const auto inst = generate_sat(params, rng);
  EXPECT_EQ(inst.cnf.num_clauses(), 40u);
  for (const auto& clause : inst.cnf.clauses()) EXPECT_EQ(clause.size(), 2u);
  EXPECT_TRUE(inst.cnf.satisfied_by(inst.planted));
}

TEST(SatGen, RejectsDegenerateRequests) {
  Rng rng(7);
  SatParams params;
  params.n = 2;  // fewer vars than the clause size
  EXPECT_THROW(generate_sat(params, rng), std::invalid_argument);
}

TEST(SatGen, DistributeIsOneVarPerAgent) {
  Rng rng(8);
  const auto inst = generate_sat3(15, rng);
  const auto dp = distribute(inst);
  EXPECT_TRUE(dp.is_one_var_per_agent());
  EXPECT_EQ(dp.num_agents(), 15);
}

}  // namespace
}  // namespace discsp::gen
