// Correlated partition episodes (sim/fault.h PartitionSchedule), the online
// invariant monitor (sim/monitor.h), and repro bundles (analysis/repro.h).
//
// Key properties:
//  - PartitionSchedule is a pure function of (seed, episode, agent): severed
//    is symmetric, only open windows cut traffic, and an inactive schedule
//    never does;
//  - the ISSUE acceptance bar: episodic 2-way partitions on n=30 3-coloring
//    with retransmit + heartbeats, AWC/resolvent still solves >= 95% of
//    trials with zero monitor violations;
//  - an empty schedule leaves a faulty config's per-channel random streams
//    untouched: metrics are bit-identical with and without partition knobs;
//  - enabling the monitor on a fault-free run changes nothing (acceptance
//    criterion: all fault knobs zero + monitor on == plain run, bit for bit);
//  - the monitor catches a manufactured soundness breach (insolubility
//    "proved" against a claimed witness);
//  - a ReproBundle round-trips through its text format and replays
//    bit-identically, which is what makes `discsp_cli repro` trustworthy.
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/repro.h"
#include "awc/awc_solver.h"
#include "csp/distributed_problem.h"
#include "csp/serialize.h"
#include "csp/validate.h"
#include "gen/coloring_gen.h"
#include "learning/resolvent.h"
#include "sim/async_engine.h"
#include "sim/fault.h"
#include "sim/thread_runtime.h"

namespace discsp {
namespace {

sim::RunResult run_awc_async(const DistributedProblem& dp,
                             const FullAssignment& initial, std::uint64_t seed,
                             const sim::AsyncConfig& config) {
  awc::AwcSolver solver(dp, learning::ResolventLearning{});
  Rng rng(seed);
  sim::AsyncEngine engine(dp.problem(), solver.make_agents(initial, rng.derive(1)),
                          config, rng.derive(2));
  return engine.run();
}

TEST(PartitionSchedule, GroupAssignmentIsDeterministicAndInRange) {
  const sim::PartitionSchedule schedule(42, 100, 40, 3);
  ASSERT_TRUE(schedule.active());
  for (std::int64_t episode = 0; episode < 8; ++episode) {
    for (AgentId agent = 0; agent < 20; ++agent) {
      const int g = schedule.group_of(episode, agent);
      EXPECT_GE(g, 0);
      EXPECT_LT(g, 3);
      EXPECT_EQ(g, schedule.group_of(episode, agent)) << "not deterministic";
      const sim::PartitionSchedule same(42, 100, 40, 3);
      EXPECT_EQ(g, same.group_of(episode, agent)) << "not a pure function of seed";
    }
  }
  // Different seeds and different episodes must be able to produce different
  // cuts (otherwise every episode would isolate the same agents).
  bool episodes_differ = false;
  for (AgentId agent = 0; agent < 20 && !episodes_differ; ++agent) {
    episodes_differ = schedule.group_of(0, agent) != schedule.group_of(1, agent);
  }
  EXPECT_TRUE(episodes_differ);
}

TEST(PartitionSchedule, SeveredOnlyInsideOpenWindowsAndSymmetric) {
  const sim::PartitionSchedule schedule(7, 100, 40, 2);
  // Window k covers [100k, 100k + 40).
  EXPECT_EQ(schedule.episode_at(0), 0);
  EXPECT_EQ(schedule.episode_at(39), 0);
  EXPECT_EQ(schedule.episode_at(40), -1);
  EXPECT_EQ(schedule.episode_at(99), -1);
  EXPECT_EQ(schedule.episode_at(100), 1);
  EXPECT_EQ(schedule.episode_at(139), 1);
  EXPECT_EQ(schedule.episode_at(140), -1);

  bool severed_somewhere = false;
  for (AgentId a = 0; a < 12; ++a) {
    for (AgentId b = 0; b < 12; ++b) {
      EXPECT_EQ(schedule.severed(a, b, 20), schedule.severed(b, a, 20))
          << "cut must be symmetric";
      EXPECT_FALSE(schedule.severed(a, b, 50)) << "no cut between windows";
      if (schedule.severed(a, b, 20)) severed_somewhere = true;
      EXPECT_FALSE(schedule.severed(a, a, 20)) << "an agent reaches itself";
    }
  }
  EXPECT_TRUE(severed_somewhere) << "a 2-way split of 12 agents must cut something";
}

TEST(PartitionSchedule, InactiveScheduleNeverCuts) {
  for (const sim::PartitionSchedule schedule :
       {sim::PartitionSchedule(1, 0, 40, 2), sim::PartitionSchedule(1, 100, 0, 2),
        sim::PartitionSchedule(1, 100, 40, 1), sim::PartitionSchedule()}) {
    EXPECT_FALSE(schedule.active());
    for (std::int64_t now : {0, 10, 120}) {
      for (AgentId a = 0; a < 6; ++a) {
        for (AgentId b = 0; b < 6; ++b) {
          EXPECT_FALSE(schedule.severed(a, b, now));
        }
      }
    }
  }
}

TEST(PartitionChaos, AcceptanceBarEpisodicTwoWayPartitions) {
  // ISSUE acceptance bar: episodic 2-way partitions with retransmit and
  // heartbeats; AWC/resolvent solves >= 95% of n=30 trials, every solution
  // validates, partitions actually fire, and the monitor sees no violation.
  constexpr int kTrials = 20;
  int solved = 0;
  std::uint64_t partition_drops = 0;
  std::uint64_t violations = 0;
  for (int t = 0; t < kTrials; ++t) {
    const std::uint64_t seed = 2100 + static_cast<std::uint64_t>(t);
    Rng rng(seed);
    const auto instance = gen::generate_coloring3(30, rng);
    const auto dp = gen::distribute(instance);
    FullAssignment initial(30);
    for (auto& v : initial) v = static_cast<Value>(rng.index(3));

    sim::AsyncConfig config;
    config.faults.partition_interval = 400;
    config.faults.partition_duration = 150;
    config.faults.partition_groups = 2;
    config.faults.refresh_interval = 50;
    config.faults.seed = seed * 13 + 3;
    config.retransmit.ack_timeout = 40;
    config.monitor.enabled = true;
    config.monitor.planted = instance.planted;

    const sim::RunResult result = run_awc_async(dp, initial, seed, config);
    EXPECT_FALSE(result.metrics.insoluble) << "trial " << t;
    partition_drops += result.metrics.faults.partition_drops;
    violations += result.metrics.monitor.violations;
    EXPECT_GT(result.metrics.monitor.checks, 0u) << "monitor never ran";
    if (result.metrics.solved) {
      ++solved;
      EXPECT_TRUE(validate_solution(instance.problem, result.assignment).ok)
          << "trial " << t;
    }
  }
  EXPECT_GE(solved, (kTrials * 95 + 99) / 100)
      << "solve rate under episodic partitions fell below 95%";
  EXPECT_GT(partition_drops, 0u) << "partitions never severed a message";
  EXPECT_EQ(violations, 0u);
}

TEST(PartitionChaos, EmptyScheduleIsBitIdenticalToNoPartitionKnobs) {
  // The stream-alignment guarantee: partition membership consumes no channel
  // stream state, so a config whose schedule never opens a window must give
  // exactly the run of the same config without partition knobs at all.
  Rng rng(314);
  const auto instance = gen::generate_coloring3(14, rng);
  const auto dp = gen::distribute(instance);
  awc::AwcSolver solver(dp, learning::ResolventLearning{});
  const FullAssignment initial = solver.random_initial(rng);

  sim::AsyncConfig base;
  base.faults.drop_rate = 0.08;
  base.faults.duplicate_rate = 0.04;
  base.faults.refresh_interval = 50;
  base.faults.seed = 777;

  sim::AsyncConfig with_empty_schedule = base;
  with_empty_schedule.faults.partition_interval = 0;  // schedule never opens
  with_empty_schedule.faults.partition_duration = 0;

  const sim::RunResult a = run_awc_async(dp, initial, 999, base);
  const sim::RunResult b = run_awc_async(dp, initial, 999, with_empty_schedule);
  EXPECT_EQ(a.metrics.cycles, b.metrics.cycles);
  EXPECT_EQ(a.metrics.maxcck, b.metrics.maxcck);
  EXPECT_EQ(a.metrics.messages, b.metrics.messages);
  EXPECT_EQ(a.metrics.total_checks, b.metrics.total_checks);
  EXPECT_EQ(a.metrics.faults.dropped, b.metrics.faults.dropped);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(b.metrics.faults.partition_drops, 0u);
}

TEST(PartitionChaos, MonitorOnFaultFreeRunIsBitIdentical) {
  // Acceptance criterion: all fault knobs at zero and the monitor enabled,
  // the paper metrics are bit-identical to a plain engine run.
  Rng rng(2718);
  const auto instance = gen::generate_coloring3(16, rng);
  const auto dp = gen::distribute(instance);
  awc::AwcSolver solver(dp, learning::ResolventLearning{});
  const FullAssignment initial = solver.random_initial(rng);

  sim::AsyncConfig plain;
  sim::AsyncConfig monitored;
  monitored.monitor.enabled = true;
  monitored.monitor.planted = instance.planted;
  monitored.monitor.stall_window = 500;
  ASSERT_FALSE(monitored.faults.enabled());

  const sim::RunResult a = run_awc_async(dp, initial, 4242, plain);
  const sim::RunResult b = run_awc_async(dp, initial, 4242, monitored);
  EXPECT_EQ(a.metrics.cycles, b.metrics.cycles);
  EXPECT_EQ(a.metrics.maxcck, b.metrics.maxcck);
  EXPECT_EQ(a.metrics.messages, b.metrics.messages);
  EXPECT_EQ(a.metrics.total_checks, b.metrics.total_checks);
  EXPECT_EQ(a.metrics.work_ops, b.metrics.work_ops);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_GT(b.metrics.monitor.checks, 0u);
  EXPECT_EQ(b.metrics.monitor.violations, 0u);
  EXPECT_EQ(a.metrics.monitor.checks, 0u) << "disabled monitor must not run";
}

TEST(PartitionChaos, ThreadRuntimeSolvesThroughPartitionEpisodes) {
  // Partitions on the wall-clock runtime: windows open on real microseconds,
  // so the exact cut pattern varies run to run, but the protocol must heal
  // and solve, and credit conservation must hold under the monitor.
  Rng rng(606);
  const auto instance = gen::generate_coloring3(10, rng);
  const auto dp = gen::distribute(instance);
  awc::AwcSolver solver(dp, learning::ResolventLearning{});
  const FullAssignment initial = solver.random_initial(rng);

  sim::ThreadRuntimeConfig config;
  config.faults.partition_interval = 4000;  // us
  config.faults.partition_duration = 1500;  // us
  config.faults.refresh_interval = 5;       // ms
  config.faults.seed = 33;
  config.monitor.enabled = true;
  config.monitor.planted = instance.planted;
  sim::ThreadRuntime runtime(dp.problem(), solver.make_agents(initial, rng.derive(1)),
                             config);
  const sim::RunResult result = runtime.run();
  ASSERT_TRUE(result.metrics.solved);
  EXPECT_TRUE(validate_solution(instance.problem, result.assignment).ok);
  EXPECT_EQ(result.metrics.monitor.violations, 0u);
  EXPECT_GT(result.metrics.monitor.checks, 0u);
}

TEST(MonitorOracle, FlagsFalseInsolubilityAgainstClaimedWitness) {
  // K4 with 3 colors is genuinely insoluble; claiming a planted witness for
  // it manufactures exactly the soundness breach the monitor exists to
  // catch. It must flag both the nogood that "excludes" the witness and the
  // insolubility report, while leaving the run's outcome untouched.
  Problem p;
  p.add_variables(4, 3);
  for (VarId u = 0; u < 4; ++u) {
    for (VarId v = static_cast<VarId>(u + 1); v < 4; ++v) {
      for (Value c = 0; c < 3; ++c) p.add_nogood(Nogood{{u, c}, {v, c}});
    }
  }
  const auto dp = DistributedProblem::one_var_per_agent(p);
  const FullAssignment initial{0, 1, 2, 0};

  sim::AsyncConfig config;
  config.monitor.enabled = true;
  config.monitor.planted = {0, 1, 2, 0};  // a lie: K4 has no 3-coloring
  config.monitor.max_reports = 256;       // keep the insolubility report in range

  const sim::RunResult result = run_awc_async(dp, initial, 11, config);
  ASSERT_TRUE(result.metrics.insoluble) << "K4 must still be proved insoluble";
  EXPECT_GT(result.metrics.monitor.violations, 0u)
      << "the monitor missed a false-insolubility breach";
  ASSERT_FALSE(result.metrics.monitor.reports.empty());
  bool saw_insolubility_report = false;
  for (const std::string& report : result.metrics.monitor.reports) {
    if (report.find("false-insolubility") != std::string::npos) {
      saw_insolubility_report = true;
    }
  }
  EXPECT_TRUE(saw_insolubility_report) << "no false-insolubility report recorded";
}

TEST(ReproBundle, RoundTripsThroughTextFormat) {
  Rng rng(515);
  const auto instance = gen::generate_coloring3(12, rng);

  analysis::ReproBundle bundle;
  bundle.algo = "awc";
  bundle.strategy = "Rslv";
  bundle.seed = 0xdeadbeefULL;
  bundle.max_activations = 123456;
  bundle.faults.drop_rate = 0.125;
  bundle.faults.corrupt_rate = 0.01;
  bundle.faults.partition_interval = 400;
  bundle.faults.partition_duration = 150;
  bundle.faults.quarantine_budget = 4;
  bundle.faults.seed = 918273;
  bundle.retransmit.ack_timeout = 40;
  bundle.nogood_capacity = 64;
  bundle.journal = true;
  bundle.checkpoint_interval = 32;
  bundle.incremental = false;
  bundle.monitor = true;
  bundle.monitor_stall = 2000;
  bundle.planted = instance.planted;
  bundle.initial.assign(12, 1);
  bundle.instance = gen::distribute(instance);
  bundle.transport = "tcp";
  bundle.deadline_ms = 1500;
  bundle.reason = "unit test cell drop=0.125";
  bundle.observed = analysis::ObservedOutcome{true, 321, 0, 7};

  std::stringstream stream;
  analysis::write_bundle(stream, bundle);
  const analysis::ReproBundle back = analysis::read_bundle(stream);

  EXPECT_EQ(back.algo, bundle.algo);
  EXPECT_EQ(back.strategy, bundle.strategy);
  EXPECT_EQ(back.seed, bundle.seed);
  EXPECT_EQ(back.max_activations, bundle.max_activations);
  EXPECT_EQ(back.faults.drop_rate, bundle.faults.drop_rate);
  EXPECT_EQ(back.faults.corrupt_rate, bundle.faults.corrupt_rate);
  EXPECT_EQ(back.faults.partition_interval, bundle.faults.partition_interval);
  EXPECT_EQ(back.faults.partition_duration, bundle.faults.partition_duration);
  EXPECT_EQ(back.faults.quarantine_budget, bundle.faults.quarantine_budget);
  EXPECT_EQ(back.faults.seed, bundle.faults.seed);
  EXPECT_EQ(back.retransmit.ack_timeout, bundle.retransmit.ack_timeout);
  EXPECT_EQ(back.nogood_capacity, bundle.nogood_capacity);
  EXPECT_EQ(back.journal, bundle.journal);
  EXPECT_EQ(back.checkpoint_interval, bundle.checkpoint_interval);
  EXPECT_EQ(back.incremental, bundle.incremental);
  EXPECT_EQ(back.monitor, bundle.monitor);
  EXPECT_EQ(back.monitor_stall, bundle.monitor_stall);
  EXPECT_EQ(back.planted, bundle.planted);
  EXPECT_EQ(back.initial, bundle.initial);
  EXPECT_EQ(back.transport, bundle.transport);
  EXPECT_EQ(back.deadline_ms, bundle.deadline_ms);
  EXPECT_EQ(back.reason, bundle.reason);
  ASSERT_TRUE(back.observed.has_value());
  EXPECT_EQ(back.observed->solved, bundle.observed->solved);
  EXPECT_EQ(back.observed->cycles, bundle.observed->cycles);
  EXPECT_EQ(back.observed->malformed_frames, bundle.observed->malformed_frames);
  EXPECT_EQ(distributed_digest(back.instance), distributed_digest(bundle.instance));
}

TEST(ReproBundle, ReplaysBitIdenticallyAfterRoundTrip) {
  // The property `discsp_cli repro` rests on: run a chaos trial through
  // run_bundle, serialize the bundle, read it back, run again — the two
  // replays must agree on every metric the bundle records.
  Rng rng(626);
  const auto instance = gen::generate_coloring3(12, rng);

  analysis::ReproBundle bundle;
  bundle.seed = 9999;
  bundle.max_activations = 200'000;
  bundle.faults.drop_rate = 0.1;
  bundle.faults.corrupt_rate = 0.01;
  bundle.faults.partition_interval = 300;
  bundle.faults.partition_duration = 100;
  bundle.faults.refresh_interval = 50;
  bundle.faults.seed = 4321;
  bundle.retransmit.ack_timeout = 40;
  bundle.monitor = true;
  bundle.planted = instance.planted;
  bundle.initial.assign(12, 0);
  bundle.instance = gen::distribute(instance);

  const sim::RunResult first = analysis::run_bundle(bundle);
  bundle.observed = analysis::observe(first);

  std::stringstream stream;
  analysis::write_bundle(stream, bundle);
  const analysis::ReproBundle back = analysis::read_bundle(stream);
  const sim::RunResult second = analysis::run_bundle(back);

  EXPECT_TRUE(analysis::matches_observed(back, second));
  EXPECT_EQ(first.metrics.cycles, second.metrics.cycles);
  EXPECT_EQ(first.metrics.maxcck, second.metrics.maxcck);
  EXPECT_EQ(first.metrics.messages, second.metrics.messages);
  EXPECT_EQ(first.metrics.faults.dropped, second.metrics.faults.dropped);
  EXPECT_EQ(first.metrics.faults.corrupted, second.metrics.faults.corrupted);
  EXPECT_EQ(first.metrics.malformed_frames, second.metrics.malformed_frames);
  EXPECT_EQ(first.metrics.monitor.violations, second.metrics.monitor.violations);
  EXPECT_EQ(first.assignment, second.assignment);
}

TEST(ReproBundle, RejectsMalformedInput) {
  const auto parse = [](const std::string& text) {
    std::istringstream in(text);
    return analysis::read_bundle(in);
  };
  EXPECT_THROW(parse(""), std::runtime_error);
  EXPECT_THROW(parse("algo awc\n"), std::runtime_error);  // missing header
  EXPECT_THROW(parse("repro 2\n"), std::runtime_error);   // unknown version
  EXPECT_THROW(parse("repro 1\nwat 3\n"), std::runtime_error);
  EXPECT_THROW(parse("repro 1\nseed notanumber\n"), std::runtime_error);
  // No instance block at all.
  EXPECT_THROW(parse("repro 1\nseed 5\n"), std::runtime_error);
  // Unterminated instance block.
  EXPECT_THROW(parse("repro 1\ninstance-begin\ndcsp 1\nvars 0\n"),
               std::runtime_error);
}

}  // namespace
}  // namespace discsp
