// Randomized algebraic properties of Nogood operations — the invariants the
// learning machinery silently relies on.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "csp/nogood.h"

namespace discsp {
namespace {

Nogood random_nogood(Rng& rng, int var_space, int domain, std::size_t max_size) {
  std::vector<Assignment> items;
  const std::size_t size = rng.index(max_size + 1);
  for (std::size_t i = 0; i < size; ++i) {
    items.push_back({static_cast<VarId>(rng.index(static_cast<std::size_t>(var_space))),
                     static_cast<Value>(rng.index(static_cast<std::size_t>(domain)))});
  }
  // Canonicalization dedups; conflicting (var, value) pairs must be filtered
  // the way callers do: keep the first binding per variable.
  std::vector<Assignment> filtered;
  for (const Assignment& a : items) {
    bool dup = false;
    for (const Assignment& kept : filtered) {
      if (kept.var == a.var) dup = true;
    }
    if (!dup) filtered.push_back(a);
  }
  return Nogood(std::move(filtered));
}

TEST(NogoodProperties, MergeIsCommutativeAndIdempotent) {
  Rng rng(1);
  for (int round = 0; round < 200; ++round) {
    // Disjoint variable ranges guarantee compatibility.
    Nogood a = random_nogood(rng, 10, 3, 4);
    Nogood b_raw = random_nogood(rng, 10, 3, 4);
    std::vector<Assignment> shifted;
    for (const Assignment& item : b_raw) shifted.push_back({item.var + 10, item.value});
    Nogood b{shifted};
    EXPECT_EQ(merge(a, b), merge(b, a));
    EXPECT_EQ(merge(a, a), a);
    EXPECT_EQ(merge(a, Nogood{}), a);
  }
}

TEST(NogoodProperties, SubsetIsReflexiveTransitiveAntisymmetric) {
  Rng rng(2);
  for (int round = 0; round < 200; ++round) {
    const Nogood a = random_nogood(rng, 8, 2, 5);
    EXPECT_TRUE(a.subset_of(a));
    // merge() requires compatible inputs (one binding per variable), so
    // strip every var of `a` from the extension before merging.
    Nogood extra = random_nogood(rng, 8, 2, 3);
    for (const Assignment& item : a) extra = extra.without(item.var);
    const Nogood b = merge(a, extra);
    EXPECT_TRUE(a.subset_of(b));
    EXPECT_TRUE(extra.subset_of(b));
    if (a.subset_of(b) && b.subset_of(a)) EXPECT_EQ(a, b);
  }
}

TEST(NogoodProperties, SubsetTransitivityOnChains) {
  Rng rng(3);
  for (int round = 0; round < 200; ++round) {
    Nogood small = random_nogood(rng, 6, 2, 2);
    std::vector<Assignment> mid_items(small.begin(), small.end());
    mid_items.push_back({static_cast<VarId>(10 + round % 5), 0});
    Nogood mid{mid_items};
    std::vector<Assignment> big_items(mid.begin(), mid.end());
    big_items.push_back({static_cast<VarId>(20 + round % 5), 1});
    Nogood big{big_items};
    EXPECT_TRUE(small.subset_of(mid));
    EXPECT_TRUE(mid.subset_of(big));
    EXPECT_TRUE(small.subset_of(big));
  }
}

TEST(NogoodProperties, WithoutIsIdempotentAndShrinks) {
  Rng rng(4);
  for (int round = 0; round < 200; ++round) {
    const Nogood a = random_nogood(rng, 10, 3, 6);
    const VarId v = static_cast<VarId>(rng.index(10));
    const Nogood once = a.without(v);
    EXPECT_EQ(once.without(v), once);
    EXPECT_LE(once.size(), a.size());
    EXPECT_FALSE(once.contains(v));
    EXPECT_TRUE(once.subset_of(a));
  }
}

TEST(NogoodProperties, ViolationIsMonotoneInSubsets) {
  // If a superset nogood is violated under a view, every subset nogood over
  // the same bindings is violated too.
  Rng rng(5);
  for (int round = 0; round < 200; ++round) {
    const Nogood big = random_nogood(rng, 8, 3, 6);
    if (big.empty()) continue;
    const Nogood small = big.without(big.items()[rng.index(big.size())].var);
    auto view = [&](VarId v) { return big.value_of(v); };
    EXPECT_TRUE(big.violated_by(view));
    EXPECT_TRUE(small.violated_by(view));
  }
}

TEST(NogoodProperties, HashEqualityContract) {
  Rng rng(6);
  for (int round = 0; round < 300; ++round) {
    const Nogood a = random_nogood(rng, 6, 2, 4);
    const Nogood b = random_nogood(rng, 6, 2, 4);
    if (a == b) {
      EXPECT_EQ(a.hash(), b.hash());
    }
    // Rebuilding from shuffled items preserves identity.
    std::vector<Assignment> items(a.begin(), a.end());
    rng.shuffle(items);
    EXPECT_EQ(Nogood(items), a);
  }
}

}  // namespace
}  // namespace discsp
