// End-to-end AWC behaviour on small problems: solutions, insolubility,
// learning strategies, and the metrics contract.
#include <gtest/gtest.h>

#include "awc/awc_solver.h"
#include "csp/validate.h"
#include "learning/mcs.h"
#include "learning/resolvent.h"
#include "solver/backtracking.h"

namespace discsp {
namespace {

/// Triangle 3-coloring: solvable, forces coordination.
Problem triangle_coloring() {
  Problem p;
  p.add_variables(3, 3);
  for (VarId u = 0; u < 3; ++u) {
    for (VarId v = static_cast<VarId>(u + 1); v < 3; ++v) {
      for (Value c = 0; c < 3; ++c) p.add_nogood(Nogood{{u, c}, {v, c}});
    }
  }
  return p;
}

/// K4 with 3 colors: insoluble.
Problem k4_three_colors() {
  Problem p;
  p.add_variables(4, 3);
  for (VarId u = 0; u < 4; ++u) {
    for (VarId v = static_cast<VarId>(u + 1); v < 4; ++v) {
      for (Value c = 0; c < 3; ++c) p.add_nogood(Nogood{{u, c}, {v, c}});
    }
  }
  return p;
}

sim::RunResult run_awc(const Problem& p, const learning::LearningStrategy& strategy,
                       std::uint64_t seed, int max_cycles = 10000) {
  auto dp = DistributedProblem::one_var_per_agent(p);
  awc::AwcOptions options;
  options.max_cycles = max_cycles;
  awc::AwcSolver solver(dp, strategy, options);
  Rng rng(seed);
  const FullAssignment initial = solver.random_initial(rng);
  return solver.solve(initial, rng);
}

TEST(Awc, SolvesTriangleWithResolventLearning) {
  const Problem p = triangle_coloring();
  const auto result = run_awc(p, learning::ResolventLearning{}, 1);
  ASSERT_TRUE(result.metrics.solved);
  EXPECT_TRUE(validate_solution(p, result.assignment).ok);
  EXPECT_FALSE(result.metrics.insoluble);
}

TEST(Awc, SolvesTriangleWithMcsLearning) {
  const Problem p = triangle_coloring();
  const auto result = run_awc(p, learning::McsLearning{}, 2);
  ASSERT_TRUE(result.metrics.solved);
  EXPECT_TRUE(validate_solution(p, result.assignment).ok);
}

TEST(Awc, SolvesTriangleWithoutLearning) {
  const Problem p = triangle_coloring();
  const auto result = run_awc(p, learning::NoLearning{}, 3);
  ASSERT_TRUE(result.metrics.solved);
  EXPECT_TRUE(validate_solution(p, result.assignment).ok);
}

TEST(Awc, DetectsK4InsolubleWithResolventLearning) {
  const Problem p = k4_three_colors();
  ASSERT_EQ(count_solutions(p, 1), 0u) << "test fixture must be insoluble";
  const auto result = run_awc(p, learning::ResolventLearning{}, 4);
  EXPECT_FALSE(result.metrics.solved);
  EXPECT_TRUE(result.metrics.insoluble)
      << "complete AWC must derive the empty nogood on K4/3";
}

TEST(Awc, AlreadySolvedInitialAssignmentCostsZeroCycles) {
  Problem p = triangle_coloring();
  auto dp = DistributedProblem::one_var_per_agent(p);
  awc::AwcSolver solver(dp, learning::ResolventLearning{});
  const FullAssignment initial{0, 1, 2};
  ASSERT_TRUE(p.is_solution(initial));
  const auto result = solver.solve(initial, Rng(7));
  EXPECT_TRUE(result.metrics.solved);
  EXPECT_EQ(result.metrics.cycles, 0);
  EXPECT_EQ(result.assignment, initial);
}

TEST(Awc, DeterministicUnderFixedSeed) {
  const Problem p = triangle_coloring();
  const auto a = run_awc(p, learning::ResolventLearning{}, 42);
  const auto b = run_awc(p, learning::ResolventLearning{}, 42);
  EXPECT_EQ(a.metrics.cycles, b.metrics.cycles);
  EXPECT_EQ(a.metrics.maxcck, b.metrics.maxcck);
  EXPECT_EQ(a.assignment, b.assignment);
}

TEST(Awc, MaxcckNeverExceedsTotalChecks) {
  const Problem p = triangle_coloring();
  const auto result = run_awc(p, learning::ResolventLearning{}, 11);
  EXPECT_LE(result.metrics.maxcck, result.metrics.total_checks);
  EXPECT_GE(result.metrics.maxcck, 0u);
}

TEST(Awc, CycleCapIsHonored) {
  const Problem p = k4_three_colors();
  // No learning on an insoluble problem can neither solve nor prove
  // insolubility: it must run into the cap.
  const auto result = run_awc(p, learning::NoLearning{}, 5, /*max_cycles=*/50);
  EXPECT_FALSE(result.metrics.solved);
  EXPECT_FALSE(result.metrics.insoluble);
  EXPECT_TRUE(result.metrics.hit_cycle_cap);
  EXPECT_LE(result.metrics.cycles, 50);
}

TEST(Awc, LearningGeneratesNogoods) {
  const Problem p = k4_three_colors();
  const auto result = run_awc(p, learning::ResolventLearning{}, 6);
  EXPECT_GT(result.metrics.nogoods_generated, 0u);
}

TEST(Awc, EmptyProblemIsImmediatelySolved) {
  Problem p;
  p.add_variables(4, 2);  // no constraints at all
  const auto result = run_awc(p, learning::ResolventLearning{}, 8);
  EXPECT_TRUE(result.metrics.solved);
  EXPECT_EQ(result.metrics.cycles, 0);
}

TEST(Awc, UnaryNogoodsArePropagatedToInsolubility) {
  Problem p;
  p.add_variables(2, 2);
  // x0 can be neither 0 nor 1: insoluble via unary constraints alone.
  p.add_nogood(Nogood{{0, 0}});
  p.add_nogood(Nogood{{0, 1}});
  const auto result = run_awc(p, learning::ResolventLearning{}, 9);
  EXPECT_FALSE(result.metrics.solved);
  EXPECT_TRUE(result.metrics.insoluble);
}

TEST(Awc, SolvedAssignmentsAreAlwaysValidAcrossSeeds) {
  const Problem p = triangle_coloring();
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const auto result = run_awc(p, learning::ResolventLearning{}, seed);
    ASSERT_TRUE(result.metrics.solved) << "seed " << seed;
    ASSERT_TRUE(validate_solution(p, result.assignment).ok) << "seed " << seed;
  }
}

}  // namespace
}  // namespace discsp
