// Clause <-> nogood conversion: the encoding the paper's distributed 3SAT
// experiments rely on.
#include <gtest/gtest.h>

#include "sat/cnf_to_csp.h"
#include "solver/backtracking.h"
#include "solver/model_counter.h"

namespace discsp::sat {
namespace {

TEST(CnfToCsp, ClauseBecomesFalsifyingNogood) {
  Cnf cnf(3);
  cnf.add_clause({Lit(0, true), Lit(1, false), Lit(2, true)});
  const Problem p = to_problem(cnf);
  ASSERT_EQ(p.num_nogoods(), 1u);
  // (x0 v ~x1 v x2) is falsified exactly by x0=0, x1=1, x2=0.
  EXPECT_EQ(p.nogoods()[0], (Nogood{{0, 0}, {1, 1}, {2, 0}}));
  EXPECT_EQ(p.num_variables(), 3);
  for (VarId v = 0; v < 3; ++v) EXPECT_EQ(p.domain_size(v), 2);
}

TEST(CnfToCsp, TautologiesAreDropped) {
  Cnf cnf(2);
  cnf.add_clause({Lit(0, true), Lit(0, false)});
  EXPECT_EQ(to_problem(cnf).num_nogoods(), 0u);
}

TEST(CnfToCsp, SolutionSetsAgree) {
  Cnf cnf(4);
  cnf.add_clause({Lit(0, true), Lit(1, true)});
  cnf.add_clause({Lit(1, false), Lit(2, true)});
  cnf.add_clause({Lit(2, false), Lit(3, false)});
  const Problem p = to_problem(cnf);
  EXPECT_EQ(count_solutions(p), count_models(cnf));
  // Every CSP solution satisfies the CNF and vice versa (spot check).
  const auto csp_solution = solve_backtracking(p);
  ASSERT_TRUE(csp_solution.has_value());
  EXPECT_TRUE(cnf.satisfied_by(*csp_solution));
}

TEST(CnfToCsp, RoundTripThroughToCnf) {
  Cnf cnf(3);
  cnf.add_clause({Lit(0, true), Lit(2, false)});
  cnf.add_clause({Lit(1, false)});
  const Cnf back = to_cnf(to_problem(cnf));
  EXPECT_EQ(back.num_vars(), cnf.num_vars());
  ASSERT_EQ(back.num_clauses(), cnf.num_clauses());
  for (const Clause& c : cnf.clauses()) EXPECT_TRUE(back.contains(c));
}

TEST(CnfToCsp, ToCnfRejectsNonBooleanDomains) {
  Problem p;
  p.add_variable(3);
  EXPECT_THROW(to_cnf(p), std::invalid_argument);
}

TEST(CnfToCsp, DistributedVersionIsOneVarPerAgent) {
  Cnf cnf(5);
  cnf.add_clause({Lit(0, true), Lit(4, false)});
  const auto dp = to_distributed(cnf);
  EXPECT_TRUE(dp.is_one_var_per_agent());
  EXPECT_EQ(dp.num_agents(), 5);
  EXPECT_EQ(dp.neighbors_of_agent(0), (std::vector<AgentId>{4}));
}

TEST(CnfToCsp, EmptyClauseBecomesEmptyNogood) {
  Cnf cnf(1);
  cnf.add_clause(Clause{});
  const Problem p = to_problem(cnf);
  EXPECT_TRUE(p.has_empty_nogood());
}

}  // namespace
}  // namespace discsp::sat
