// DPLL model counter: exact counts on formulas with known model counts,
// cross-checked against the generic backtracking solver.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "sat/cnf_to_csp.h"
#include "solver/backtracking.h"
#include "solver/model_counter.h"

namespace discsp::sat {
namespace {

Lit pos(VarId v) { return Lit(v, true); }
Lit neg(VarId v) { return Lit(v, false); }

TEST(ModelCounter, EmptyFormulaCountsAllAssignments) {
  Cnf cnf(3);
  EXPECT_EQ(count_models(cnf), 8u);
}

TEST(ModelCounter, SingleUnitClause) {
  Cnf cnf(2);
  cnf.add_clause({pos(0)});
  EXPECT_EQ(count_models(cnf), 2u);  // x0=1, x1 free
}

TEST(ModelCounter, ContradictionIsZero) {
  Cnf cnf(2);
  cnf.add_clause({pos(0)});
  cnf.add_clause({neg(0)});
  EXPECT_EQ(count_models(cnf), 0u);
  EXPECT_FALSE(is_satisfiable(cnf));
}

TEST(ModelCounter, EmptyClauseIsZero) {
  Cnf cnf(2);
  cnf.add_clause(Clause{});
  EXPECT_EQ(count_models(cnf), 0u);
}

TEST(ModelCounter, XorLikeFormula) {
  // (x0 v x1) & (~x0 v ~x1): exactly the two one-hot assignments.
  Cnf cnf(2);
  cnf.add_clause({pos(0), pos(1)});
  cnf.add_clause({neg(0), neg(1)});
  EXPECT_EQ(count_models(cnf), 2u);
}

TEST(ModelCounter, LimitSaturates) {
  Cnf cnf(4);  // 16 models
  EXPECT_EQ(count_models(cnf, 5), 5u);
  EXPECT_EQ(count_models(cnf, 16), 16u);
  EXPECT_EQ(count_models(cnf, 100), 16u);
}

TEST(ModelCounter, FindModelsReturnsDistinctValidModels) {
  Cnf cnf(3);
  cnf.add_clause({pos(0), pos(1)});
  cnf.add_clause({neg(1), pos(2)});
  ModelCounter counter(cnf);
  const auto models = counter.find_models(10);
  EXPECT_EQ(models.size(), count_models(cnf));
  for (std::size_t i = 0; i < models.size(); ++i) {
    EXPECT_TRUE(cnf.satisfied_by(models[i])) << "model " << i;
    for (std::size_t j = i + 1; j < models.size(); ++j) {
      EXPECT_NE(models[i], models[j]) << "duplicate models " << i << "," << j;
    }
  }
}

TEST(ModelCounter, SolveCnfFindsAModel) {
  Cnf cnf(3);
  cnf.add_clause({pos(0)});
  cnf.add_clause({neg(0), pos(2)});
  const auto model = solve_cnf(cnf);
  ASSERT_TRUE(model.has_value());
  EXPECT_TRUE(cnf.satisfied_by(*model));
}

TEST(ModelCounter, AgreesWithBacktrackingOnRandomFormulas) {
  // Cross-check the two independent engines on every 3-var formula shape we
  // can cheaply enumerate: random small CNFs.
  std::uint64_t seed = 123;
  for (int round = 0; round < 40; ++round) {
    Cnf cnf(5);
    const int clauses = 1 + static_cast<int>(discsp::splitmix64(seed) % 8);
    for (int c = 0; c < clauses; ++c) {
      std::vector<Lit> lits;
      const int size = 1 + static_cast<int>(discsp::splitmix64(seed) % 3);
      for (int l = 0; l < size; ++l) {
        const auto var = static_cast<VarId>(discsp::splitmix64(seed) % 5);
        lits.emplace_back(var, (discsp::splitmix64(seed) & 1) != 0);
      }
      Clause clause(std::move(lits));
      if (!clause.is_tautology()) cnf.add_clause(std::move(clause));
    }
    const auto expected = count_solutions(to_problem(cnf));
    EXPECT_EQ(count_models(cnf), expected) << "round " << round;
  }
}

TEST(ModelCounter, ReusableAcrossCalls) {
  Cnf cnf(3);
  cnf.add_clause({pos(0), pos(1), pos(2)});
  ModelCounter counter(cnf);
  EXPECT_EQ(counter.count(), 7u);
  EXPECT_EQ(counter.count(), 7u) << "count() must reset internal state";
  EXPECT_EQ(counter.find_models(100).size(), 7u);
  EXPECT_EQ(counter.count(3), 3u);
}

TEST(ModelCounter, DecisionLimitAborts) {
  // A formula with many models and a one-decision budget cannot finish.
  Cnf cnf(16);
  for (VarId v = 0; v + 2 < 16; v += 3) {
    cnf.add_clause({pos(v), pos(v + 1), pos(v + 2)});
  }
  ModelCounter counter(cnf);
  counter.set_decision_limit(1);
  const auto partial = counter.count(0);
  EXPECT_TRUE(counter.aborted());
  EXPECT_LT(partial, count_models(cnf));

  // Removing the limit restores the exact count and clears the flag.
  counter.set_decision_limit(0);
  const auto full = counter.count(0);
  EXPECT_FALSE(counter.aborted());
  EXPECT_EQ(full, count_models(cnf));
}

TEST(ModelCounter, GenerousLimitDoesNotAbort) {
  Cnf cnf(6);
  cnf.add_clause({pos(0), neg(1)});
  ModelCounter counter(cnf);
  counter.set_decision_limit(1'000'000);
  const auto count = counter.count(0);
  EXPECT_FALSE(counter.aborted());
  EXPECT_EQ(count, count_models(cnf));
}

TEST(ModelCounter, StatsPopulated) {
  Cnf cnf(6);
  cnf.add_clause({pos(0), pos(1)});
  cnf.add_clause({neg(0), pos(2)});
  ModelCounter counter(cnf);
  counter.count();
  EXPECT_GT(counter.stats().propagations, 0u);
}

}  // namespace
}  // namespace discsp::sat
