// Problem: construction rules, neighbor derivation, solution predicates.
#include <gtest/gtest.h>

#include "csp/problem.h"

namespace discsp {
namespace {

TEST(Problem, AddVariableAssignsIdsAndNames) {
  Problem p;
  EXPECT_EQ(p.add_variable(3), 0);
  EXPECT_EQ(p.add_variable(2, "flag"), 1);
  EXPECT_EQ(p.num_variables(), 2);
  EXPECT_EQ(p.domain_size(0), 3);
  EXPECT_EQ(p.domain_size(1), 2);
  EXPECT_EQ(p.name(0), "x0");
  EXPECT_EQ(p.name(1), "flag");
}

TEST(Problem, RejectsNonPositiveDomain) {
  Problem p;
  EXPECT_THROW(p.add_variable(0), std::invalid_argument);
  EXPECT_THROW(p.add_variable(-2), std::invalid_argument);
}

TEST(Problem, AddNogoodValidatesReferences) {
  Problem p;
  p.add_variables(2, 2);
  EXPECT_THROW(p.add_nogood(Nogood{{5, 0}}), std::out_of_range);
  EXPECT_THROW(p.add_nogood(Nogood{{0, 9}}), std::out_of_range);
  EXPECT_TRUE(p.add_nogood(Nogood{{0, 0}, {1, 1}}));
}

TEST(Problem, DeduplicatesNogoods) {
  Problem p;
  p.add_variables(2, 2);
  EXPECT_TRUE(p.add_nogood(Nogood{{0, 0}, {1, 1}}));
  EXPECT_FALSE(p.add_nogood(Nogood{{1, 1}, {0, 0}}));
  EXPECT_EQ(p.num_nogoods(), 1u);
}

TEST(Problem, PerVariableIndexAndNeighbors) {
  Problem p;
  p.add_variables(4, 2);
  p.add_nogood(Nogood{{0, 0}, {1, 0}});
  p.add_nogood(Nogood{{0, 1}, {2, 1}});
  p.add_nogood(Nogood{{1, 0}, {2, 0}, {3, 0}});
  EXPECT_EQ(p.nogoods_of(0).size(), 2u);
  EXPECT_EQ(p.nogoods_of(3).size(), 1u);
  EXPECT_EQ(p.neighbors_of(0), (std::vector<VarId>{1, 2}));
  EXPECT_EQ(p.neighbors_of(3), (std::vector<VarId>{1, 2}));
  EXPECT_EQ(p.neighbors_of(1), (std::vector<VarId>{0, 2, 3}));
}

TEST(Problem, IsSolutionSemantics) {
  Problem p;
  p.add_variables(2, 2);
  p.add_nogood(Nogood{{0, 0}, {1, 0}});
  EXPECT_TRUE(p.is_solution({0, 1}));
  EXPECT_TRUE(p.is_solution({1, 1}));
  EXPECT_FALSE(p.is_solution({0, 0}));
  EXPECT_FALSE(p.is_solution({0}));        // wrong arity
  EXPECT_FALSE(p.is_solution({0, 5}));     // out of domain
  EXPECT_FALSE(p.is_solution({0, -1}));
}

TEST(Problem, ViolatedCount) {
  Problem p;
  p.add_variables(3, 2);
  p.add_nogood(Nogood{{0, 0}, {1, 0}});
  p.add_nogood(Nogood{{1, 0}, {2, 0}});
  p.add_nogood(Nogood{{0, 0}, {2, 0}});
  EXPECT_EQ(p.violated_count({0, 0, 0}), 3u);
  EXPECT_EQ(p.violated_count({0, 0, 1}), 1u);
  EXPECT_EQ(p.violated_count({1, 0, 1}), 0u);
}

TEST(Problem, EmptyNogoodFlag) {
  Problem p;
  p.add_variables(1, 2);
  EXPECT_FALSE(p.has_empty_nogood());
  p.add_nogood(Nogood{});
  EXPECT_TRUE(p.has_empty_nogood());
  EXPECT_FALSE(p.is_solution({0}));
}

}  // namespace
}  // namespace discsp
