// Tests of carrier-level frame batching (net/transport.h BatchConfig).
// Batching must be invisible to the logical frame stream:
//  - bit-identity: a seeded stream of sealed net frames — including
//    deliberately corrupted ones, which the carrier must haul verbatim for
//    the receiver-side guard to judge — arrives with identical content and
//    order at batch 1 (the seed-equivalent path) and batch 64, over both
//    the in-proc ring transport and TCP loopback;
//  - a batched TCP close() still flushes deferred frames: terminal
//    ERROR/STOP delivery (coordinator refuse()/request_stop()) depends on
//    the bounded final drain;
//  - end-to-end: a fixed-seed chaos run (drop + duplication + corruption)
//    solves with a validated assignment and zero monitor violations at
//    batch 1 and batch 64 on both transports — paper metrics cannot depend
//    on how frames are carried.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "gen/coloring_gen.h"
#include "net/coordinator.h"
#include "net/jobspec.h"
#include "net/netframe.h"
#include "net/tcp_transport.h"
#include "net/transport.h"
#include "net/worker.h"
#include "sim/message.h"

namespace discsp {
namespace {

using net::JobSpec;
using net::ServeConfig;
using net::ServeResult;
using net::StopReason;
using net::WorkerConfig;
using net::WorkerResult;
using sim::WireFrame;

net::BatchConfig batched64() {
  net::BatchConfig batch;
  batch.max_frames = 64;
  return batch;
}

/// A deterministic mix of control and routed frames shaped like real runs:
/// small acks/pings interleaved with variable-size route frames, a slice of
/// them corrupted in flight.
std::vector<WireFrame> make_stream(std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<WireFrame> stream;
  stream.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    WireFrame frame;
    switch (rng.index(4)) {
      case 0: {
        net::NetAck ack;
        ack.from = static_cast<AgentId>(rng.index(64));
        ack.to = static_cast<AgentId>(rng.index(64));
        ack.seq = rng.next();
        frame = net::encode_net_frame(net::NetFrame{ack});
        break;
      }
      case 1: {
        net::NetPing ping;
        ping.nonce = rng.next();
        ping.sent_ms = static_cast<std::int64_t>(rng.index(1000000));
        frame = net::encode_net_frame(net::NetFrame{ping});
        break;
      }
      default: {
        net::NetRoute route;
        route.from = static_cast<AgentId>(rng.index(64));
        route.to = static_cast<AgentId>(rng.index(64));
        route.track_seq = rng.next();
        route.frame.resize(1 + rng.index(40));
        for (auto& word : route.frame) word = rng.next();
        frame = net::encode_net_frame(net::NetFrame{std::move(route)});
        break;
      }
    }
    if (rng.index(8) == 0) sim::corrupt_frame(frame, rng.next());
    stream.push_back(std::move(frame));
  }
  return stream;
}

/// Push `stream` through an in-proc connection pair and return what arrived.
/// Single-threaded on purpose: all frames are queued before any is popped,
/// which at batch > 1 overflows the SPSC ring and exercises the
/// overflow-spill FIFO invariant.
std::vector<WireFrame> roundtrip_inproc(const net::BatchConfig& batch,
                                        const std::vector<WireFrame>& stream) {
  net::InProcTransport transport(batch);
  auto listener = transport.listen("carrier");
  auto client = transport.connect("carrier", 1000);
  auto server = listener->accept();
  EXPECT_NE(client, nullptr);
  EXPECT_NE(server, nullptr);
  if (client == nullptr || server == nullptr) return {};
  for (const auto& frame : stream) EXPECT_TRUE(client->send(frame));
  std::vector<WireFrame> got;
  got.reserve(stream.size());
  WireFrame frame;
  while (server->recv(frame)) got.push_back(frame);
  return got;
}

/// Push `stream` through a TCP loopback pair (ephemeral port) and return
/// what arrived, in order. The receiver runs on its own thread; the sender
/// keeps pumping until everything is acknowledged as received so flush
/// deadlines and POLLOUT backpressure both get exercised.
std::vector<WireFrame> roundtrip_tcp(const net::BatchConfig& batch,
                                     const std::vector<WireFrame>& stream) {
  net::TcpTransport transport(batch);
  auto listener = transport.listen("127.0.0.1:0");
  const std::string endpoint = "127.0.0.1:" + std::to_string(listener->port());

  std::vector<WireFrame> got;
  got.reserve(stream.size());
  std::atomic<std::size_t> received{0};
  std::atomic<bool> accept_failed{false};
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  std::thread server_thread([&] {
    std::unique_ptr<net::Connection> server;
    while (server == nullptr && std::chrono::steady_clock::now() < deadline) {
      server = listener->accept();
      if (server == nullptr) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    if (server == nullptr) {
      accept_failed.store(true);
      return;
    }
    WireFrame frame;
    while (received.load(std::memory_order_relaxed) < stream.size() &&
           server->open() && std::chrono::steady_clock::now() < deadline) {
      server->pump(5);
      while (server->recv(frame)) {
        got.push_back(frame);
        received.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  auto client = transport.connect(endpoint, 5000);
  EXPECT_NE(client, nullptr);
  if (client != nullptr) {
    for (const auto& frame : stream) {
      EXPECT_TRUE(client->send(frame));
      client->pump(0);
    }
    while (received.load() < stream.size() &&
           std::chrono::steady_clock::now() < deadline) {
      client->pump(1);
    }
    client->close();
  }
  server_thread.join();
  EXPECT_FALSE(accept_failed.load());
  return got;
}

TEST(NetBatching, InProcCarrierIsBitIdenticalAcrossBatchSettings) {
  // 6000 frames > the 4096-slot ring: the batched run must spill to the
  // overflow deque and drain back without reordering or loss.
  const auto stream = make_stream(6000, 0xba7c4);
  const auto unbatched =
      roundtrip_inproc(net::BatchConfig::unbatched(), stream);
  const auto batched = roundtrip_inproc(batched64(), stream);
  ASSERT_EQ(unbatched.size(), stream.size());
  ASSERT_EQ(batched.size(), stream.size());
  EXPECT_EQ(unbatched, stream);
  EXPECT_EQ(batched, stream);
}

TEST(NetBatching, TcpCarrierIsBitIdenticalAcrossBatchSettings) {
  const auto stream = make_stream(2000, 0x7c9);
  const auto unbatched = roundtrip_tcp(net::BatchConfig::unbatched(), stream);
  const auto batched = roundtrip_tcp(batched64(), stream);
  ASSERT_EQ(unbatched.size(), stream.size());
  ASSERT_EQ(batched.size(), stream.size());
  EXPECT_EQ(unbatched, stream);
  EXPECT_EQ(batched, stream);
}

TEST(NetBatching, TcpCloseFlushesDeferredFrames) {
  // The coordinator's refuse()/request_stop() queue a terminal frame and
  // drop the connection right after. With coalescing the frame may still be
  // inside its batching window when close() runs; the bounded final drain
  // must deliver it. A far-away flush deadline guarantees only close() can
  // be the flusher here.
  net::BatchConfig batch = batched64();
  batch.flush_us = 1000000;
  const auto stream = make_stream(3, 0xc105e);

  net::TcpTransport transport(batch);
  auto listener = transport.listen("127.0.0.1:0");
  const std::string endpoint = "127.0.0.1:" + std::to_string(listener->port());

  std::vector<WireFrame> got;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  std::thread server_thread([&] {
    std::unique_ptr<net::Connection> server;
    while (server == nullptr && std::chrono::steady_clock::now() < deadline) {
      server = listener->accept();
      if (server == nullptr) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    ASSERT_NE(server, nullptr);
    WireFrame frame;
    while (server->open() && std::chrono::steady_clock::now() < deadline) {
      server->pump(5);
      while (server->recv(frame)) got.push_back(frame);
    }
    while (server->recv(frame)) got.push_back(frame);
  });

  auto client = transport.connect(endpoint, 5000);
  ASSERT_NE(client, nullptr);
  for (const auto& frame : stream) ASSERT_TRUE(client->send(frame));
  client->close();  // frames are still deferred: only the final drain sends
  server_thread.join();
  EXPECT_EQ(got, stream);
}

// --- End-to-end: the chaos acceptance run at both batch settings ---------

JobSpec make_job(int n, std::uint64_t seed, int num_workers) {
  Rng rng(seed);
  const auto instance = gen::generate_coloring3(n, rng);
  JobSpec spec;
  spec.bundle.algo = "awc";
  spec.bundle.strategy = "Rslv";
  spec.bundle.seed = seed;
  spec.bundle.instance = gen::distribute(instance);
  spec.bundle.planted = instance.planted;
  spec.bundle.initial.resize(static_cast<std::size_t>(n));
  for (auto& v : spec.bundle.initial) v = static_cast<Value>(rng.index(3));
  spec.bundle.monitor = true;
  spec.bundle.retransmit.ack_timeout = 25;
  spec.num_workers = num_workers;
  spec.report_interval_ms = 5;
  // The standard chaos mix of the acceptance bar: drops force repair
  // round-trips, duplicates hit the dedup window, corruption exercises the
  // checksum + retransmit path under whichever carrier batching is active.
  spec.bundle.faults.drop_rate = 0.10;
  spec.bundle.faults.duplicate_rate = 0.05;
  spec.bundle.faults.corrupt_rate = 0.05;
  spec.bundle.faults.refresh_interval = 25;
  return spec;
}

WorkerConfig worker_config(const std::string& endpoint, int index) {
  WorkerConfig config;
  config.endpoint = endpoint;
  config.reconnect_seed = 0x5eed + static_cast<std::uint64_t>(index);
  config.max_connect_attempts = 20;
  return config;
}

void expect_chaos_run_clean(const ServeConfig& config,
                            const ServeResult& result) {
  ASSERT_TRUE(result.error.empty()) << result.error;
  EXPECT_EQ(result.reason, StopReason::kSolved);
  EXPECT_TRUE(config.job.bundle.instance.problem().is_solution(
      result.run.assignment));
  EXPECT_EQ(result.run.metrics.monitor.violations, 0u);
  EXPECT_GT(result.run.metrics.faults.dropped, 0u);
  EXPECT_GT(result.run.metrics.faults.corrupted, 0u);
}

void run_inproc_chaos(const net::BatchConfig& batch) {
  net::InProcTransport transport(batch);
  ServeConfig config;
  config.job = make_job(24, 41, 3);
  config.deadline_ms = 60000;

  std::vector<WorkerConfig> workers;
  for (int i = 0; i < 3; ++i) workers.push_back(worker_config("chaos", i));

  auto listener = transport.listen("chaos");
  std::vector<std::thread> threads;
  threads.reserve(workers.size());
  std::vector<WorkerResult> results(workers.size());
  for (std::size_t i = 0; i < workers.size(); ++i) {
    threads.emplace_back([&transport, &workers, &results, i] {
      results[i] = net::run_worker(transport, workers[i]);
    });
  }
  const ServeResult result = net::serve(*listener, config);
  for (auto& t : threads) t.join();
  expect_chaos_run_clean(config, result);
}

void run_tcp_chaos(const net::BatchConfig& batch) {
  net::TcpTransport transport(batch);
  auto listener = transport.listen("127.0.0.1:0");
  const std::string endpoint = "127.0.0.1:" + std::to_string(listener->port());

  ServeConfig config;
  config.job = make_job(12, 21, 2);
  config.deadline_ms = 60000;
  config.transport = "tcp";

  std::vector<WorkerResult> results(2);
  std::vector<std::thread> threads;
  for (int i = 0; i < 2; ++i) {
    threads.emplace_back([&transport, &results, endpoint, i] {
      results[static_cast<std::size_t>(i)] =
          net::run_worker(transport, worker_config(endpoint, i));
    });
  }
  const ServeResult result = net::serve(*listener, config);
  for (auto& t : threads) t.join();
  expect_chaos_run_clean(config, result);
}

TEST(NetBatchingChaos, InProcChaosSolvesUnbatched) {
  run_inproc_chaos(net::BatchConfig::unbatched());
}

TEST(NetBatchingChaos, InProcChaosSolvesBatched) {
  run_inproc_chaos(batched64());
}

TEST(NetBatchingChaos, TcpChaosSolvesUnbatched) {
  run_tcp_chaos(net::BatchConfig::unbatched());
}

TEST(NetBatchingChaos, TcpChaosSolvesBatched) {
  run_tcp_chaos(batched64());
}

}  // namespace
}  // namespace discsp
