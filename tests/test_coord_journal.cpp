// Coordinator control-plane journal: snapshot + record replay must rebuild
// the attach table, per-agent seq floors, and best-partial snapshot exactly,
// and a SIGKILL-torn record tail must truncate cleanly instead of failing
// the load (docs/FAULT_MODEL.md, coordinator-recovery state machine).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "net/coord_journal.h"

namespace discsp::net {
namespace {

std::string temp_journal(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

CoordJournalConfig config_for(const std::string& path) {
  CoordJournalConfig config;
  config.path = path;
  config.seq_reserve = 8;
  return config;
}

CoordState seed_state() {
  CoordState state;
  state.digest = 0xabcdef12345ULL;
  state.incarnation = 1;
  state.slots.resize(3);
  return state;
}

std::uint64_t floor_of(const CoordState& state, AgentId agent) {
  for (const auto& [known, seq] : state.seq_floors) {
    if (known == agent) return seq;
  }
  return 0;
}

TEST(CoordJournal, ReplayRebuildsControlPlaneStateExactly) {
  const std::string path = temp_journal("discsp_coord_journal_replay.wal");
  {
    CoordJournal journal(config_for(path));
    std::string error;
    ASSERT_TRUE(journal.start(seed_state(), &error)) << error;

    journal.record_attach(0, 1, false);
    journal.record_attach(1, 1, false);
    journal.record_attach(2, 1, false);
    journal.ensure_seq(3, 5);
    journal.ensure_seq(4, 2);
    journal.record_value(3, 1);
    journal.record_value(4, 0);
    journal.record_value(3, 2);  // later record wins
    journal.record_best(2, {{3, 2}, {4, 0}});
    journal.record_best(1, {{3, 1}, {4, 0}});  // improved snapshot replaces
    // Shard 1's worker died and a replacement attached: incarnation bump,
    // restart counted, dead-incarnation counters folded absolutely.
    journal.record_fold(1, 17, {9, 8, 7});
    journal.record_attach(1, 2, true);
  }

  std::string error;
  const auto loaded = CoordJournal::load(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->digest, 0xabcdef12345ULL);
  EXPECT_EQ(loaded->incarnation, 1u);
  EXPECT_EQ(loaded->restarts, 1u);

  // Attach table.
  ASSERT_EQ(loaded->slots.size(), 3u);
  EXPECT_EQ(loaded->slots[0].incarnation, 1u);
  EXPECT_EQ(loaded->slots[1].incarnation, 2u);
  EXPECT_EQ(loaded->slots[2].incarnation, 1u);
  EXPECT_EQ(loaded->slots[1].prior_processed, 17u);
  EXPECT_EQ(loaded->slots[1].prior_words, (std::vector<std::uint64_t>{9, 8, 7}));
  EXPECT_TRUE(loaded->slots[0].prior_words.empty());

  // Seq floors carry the block reservation (seq + seq_reserve).
  EXPECT_EQ(floor_of(*loaded, 3), 13u);
  EXPECT_EQ(floor_of(*loaded, 4), 10u);

  // Values and the best-partial snapshot: latest record wins, verbatim.
  EXPECT_EQ(loaded->values,
            (std::vector<std::pair<AgentId, Value>>{{3, 2}, {4, 0}}));
  EXPECT_TRUE(loaded->have_best);
  EXPECT_EQ(loaded->best_violations, 1);
  EXPECT_EQ(loaded->best,
            (std::vector<std::pair<AgentId, Value>>{{3, 1}, {4, 0}}));
  EXPECT_FALSE(loaded->insoluble);
  std::filesystem::remove(path);
}

TEST(CoordJournal, AssignRecordsReplayOwnershipExactly) {
  // Shard-migration ownership flips (r-assign) must replay bit-identically:
  // a resumed coordinator routes by the exact journaled owner map, which is
  // what makes failover and migration compose.
  const std::string path = temp_journal("discsp_coord_journal_assign.wal");
  {
    CoordJournal journal(config_for(path));
    std::string error;
    ASSERT_TRUE(journal.start(seed_state(), &error)) << error;
    journal.record_assign(3, 1);
    journal.record_assign(5, 0);
    journal.record_assign(3, 2);  // later flip wins (handback)
  }
  std::string error;
  const auto loaded = CoordJournal::load(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->owners,
            (std::vector<std::pair<AgentId, int>>{{3, 2}, {5, 0}}));

  // Checkpoint compaction carries the owner map through the snapshot region.
  {
    CoordJournal journal(config_for(path));
    ASSERT_TRUE(journal.start(seed_state(), &error)) << error;
    CoordState state = seed_state();
    state.owners = {{7, 2}};
    ASSERT_TRUE(journal.checkpoint(state, &error)) << error;
    journal.record_assign(8, 1);
  }
  const auto reloaded = CoordJournal::load(path, &error);
  ASSERT_TRUE(reloaded.has_value()) << error;
  EXPECT_EQ(reloaded->owners,
            (std::vector<std::pair<AgentId, int>>{{7, 2}, {8, 1}}));
  std::filesystem::remove(path);
}

TEST(CoordJournal, SeqBlocksMakeRoutineRoutingAppendFree) {
  const std::string path = temp_journal("discsp_coord_journal_blocks.wal");
  CoordJournal journal(config_for(path));
  std::string error;
  ASSERT_TRUE(journal.start(seed_state(), &error)) << error;

  journal.ensure_seq(0, 1);
  const std::uint64_t after_first = journal.appends();
  for (std::uint64_t seq = 2; seq <= 9; ++seq) journal.ensure_seq(0, seq);
  EXPECT_EQ(journal.appends(), after_first);  // covered by the reserved block
  journal.ensure_seq(0, 10);                  // crosses the limit: one append
  EXPECT_EQ(journal.appends(), after_first + 1);
  std::filesystem::remove(path);
}

TEST(CoordJournal, CheckpointCompactsAndSurvivesReload) {
  const std::string path = temp_journal("discsp_coord_journal_ckpt.wal");
  CoordJournal journal(config_for(path));
  std::string error;
  ASSERT_TRUE(journal.start(seed_state(), &error)) << error;
  for (int i = 0; i < 300; ++i) journal.record_value(0, i % 3);
  EXPECT_TRUE(journal.should_checkpoint());

  // The coordinator folds its live state into the snapshot; the record tail
  // resets and later appends replay on top of the new checkpoint.
  CoordState live = seed_state();
  live.incarnation = 2;
  live.restarts = 1;
  live.values = {{0, 2}};
  live.seq_floors = {{0, 640}};
  live.have_best = true;
  live.best_violations = 0;
  live.best = {{0, 2}};
  live.slots[2].incarnation = 3;
  ASSERT_TRUE(journal.checkpoint(live, &error)) << error;
  EXPECT_FALSE(journal.should_checkpoint());
  EXPECT_EQ(journal.checkpoints(), 1u);
  journal.record_value(0, 1);
  journal.record_insoluble(5);

  const auto loaded = CoordJournal::load(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->incarnation, 2u);
  EXPECT_EQ(loaded->restarts, 1u);
  EXPECT_EQ(floor_of(*loaded, 0), 640u);
  EXPECT_EQ(loaded->values, (std::vector<std::pair<AgentId, Value>>{{0, 1}}));
  EXPECT_EQ(loaded->slots[2].incarnation, 3u);
  EXPECT_TRUE(loaded->insoluble);
  EXPECT_EQ(loaded->insoluble_agent, 5);
  std::filesystem::remove(path);
}

TEST(CoordJournal, TornTailTruncatesReplayInsteadOfFailing) {
  const std::string path = temp_journal("discsp_coord_journal_torn.wal");
  {
    CoordJournal journal(config_for(path));
    std::string error;
    ASSERT_TRUE(journal.start(seed_state(), &error)) << error;
    journal.record_value(1, 1);
    journal.record_value(2, 2);
  }
  // Simulate SIGKILL mid-append: chop the file mid-way through its last line.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 5);

  std::string error;
  const auto loaded = CoordJournal::load(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->values, (std::vector<std::pair<AgentId, Value>>{{1, 1}}));
  std::filesystem::remove(path);
}

TEST(CoordJournal, CorruptCheckpointRegionFailsTheLoad) {
  const std::string path = temp_journal("discsp_coord_journal_corrupt.wal");
  {
    CoordJournal journal(config_for(path));
    std::string error;
    ASSERT_TRUE(journal.start(seed_state(), &error)) << error;
  }
  // Flip a byte inside the atomically-published snapshot region.
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(20);
  f.put('!');
  f.close();

  std::string error;
  EXPECT_FALSE(CoordJournal::load(path, &error).has_value());
  EXPECT_FALSE(error.empty());
  std::filesystem::remove(path);

  EXPECT_FALSE(CoordJournal::load(path, &error).has_value());  // missing file
}

TEST(CoordJournal, ConfigValidationRejectsBadKnobs) {
  CoordJournalConfig config;
  EXPECT_THROW(config.validate(), std::invalid_argument);  // empty path
  config.path = "x.wal";
  config.seq_reserve = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.seq_reserve = 1;
  config.checkpoint_interval = -1;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.checkpoint_interval = 0;
  EXPECT_NO_THROW(config.validate());
}

}  // namespace
}  // namespace discsp::net
