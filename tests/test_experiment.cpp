// Experiment harness: spec derivation, instance determinism, and comparison
// methodology (same instances + initials for every runner).
#include <gtest/gtest.h>

#include "analysis/experiment.h"

namespace discsp::analysis {
namespace {

TEST(Spec, FullScaleMatchesPaperStructure) {
  ReproConfig config;
  config.trials = 100;
  const auto coloring = spec_for(ProblemFamily::kColoring3, 60, config);
  EXPECT_EQ(coloring.instances, 10);
  EXPECT_EQ(coloring.inits_per_instance, 10);
  const auto sat = spec_for(ProblemFamily::kSat3, 50, config);
  EXPECT_EQ(sat.instances, 25);
  EXPECT_EQ(sat.inits_per_instance, 4);
  const auto onesat = spec_for(ProblemFamily::kOneSat3, 50, config);
  EXPECT_EQ(onesat.instances, 4);
  EXPECT_EQ(onesat.inits_per_instance, 25);
}

TEST(Spec, ReducedBudgetsStayPositive) {
  ReproConfig config;
  config.trials = 1;
  for (auto family : {ProblemFamily::kColoring3, ProblemFamily::kSat3,
                      ProblemFamily::kOneSat3}) {
    const auto spec = spec_for(family, 50, config);
    EXPECT_GE(spec.instances, 1);
    EXPECT_GE(spec.inits_per_instance, 1);
  }
}

TEST(Spec, NScaleShrinksN) {
  ReproConfig config;
  config.n_scale = 0.5;
  EXPECT_EQ(spec_for(ProblemFamily::kColoring3, 60, config).n, 30);
}

TEST(FamilyName, Labels) {
  EXPECT_EQ(family_name(ProblemFamily::kColoring3), "d3c");
  EXPECT_EQ(family_name(ProblemFamily::kSat3), "d3s");
  EXPECT_EQ(family_name(ProblemFamily::kOneSat3), "d3s1");
}

TEST(MakeInstance, DeterministicPerIndex) {
  ExperimentSpec spec;
  spec.family = ProblemFamily::kColoring3;
  spec.n = 20;
  spec.seed = 42;
  const auto a = make_instance(spec, 0);
  const auto b = make_instance(spec, 0);
  const auto c = make_instance(spec, 1);
  EXPECT_EQ(a.problem().num_nogoods(), b.problem().num_nogoods());
  EXPECT_EQ(a.problem().nogoods()[0], b.problem().nogoods()[0]);
  EXPECT_EQ(a.num_agents(), 20);
  EXPECT_EQ(c.num_agents(), 20);
}

TEST(RunComparison, RunnersSeeTheSameTrials) {
  ExperimentSpec spec;
  spec.family = ProblemFamily::kColoring3;
  spec.n = 12;
  spec.instances = 2;
  spec.inits_per_instance = 2;
  spec.seed = 7;
  spec.max_cycles = 500;

  // Two copies of a runner that records what it was given.
  std::vector<FullAssignment> seen_a, seen_b;
  auto recorder = [](std::vector<FullAssignment>& sink) {
    return [&sink](const DistributedProblem& dp, const FullAssignment& initial,
                   const Rng&) {
      sink.push_back(initial);
      sim::RunResult result;
      result.metrics.solved = dp.problem().is_solution(initial);
      result.assignment = initial;
      return result;
    };
  };
  const std::vector<NamedRunner> runners = {
      {"a", recorder(seen_a)},
      {"b", recorder(seen_b)},
  };
  const auto rows = run_comparison(spec, runners);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].trials, 4);
  EXPECT_EQ(rows[1].trials, 4);
  EXPECT_EQ(seen_a, seen_b) << "every runner must get identical (instance, initial) pairs";
}

TEST(RunComparison, AggregatesSolvedPercentAndMeans) {
  ExperimentSpec spec;
  spec.family = ProblemFamily::kColoring3;
  spec.n = 10;
  spec.instances = 1;
  spec.inits_per_instance = 4;
  spec.seed = 3;

  int counter = 0;
  const std::vector<NamedRunner> runners = {{"toggle", [&counter](const DistributedProblem&,
                                                                  const FullAssignment& initial,
                                                                  const Rng&) {
                                               sim::RunResult r;
                                               r.metrics.cycles = 10 * (counter + 1);
                                               r.metrics.maxcck = 100;
                                               r.metrics.solved = (counter++ % 2) == 0;
                                               r.assignment = initial;
                                               return r;
                                             }}};
  const auto rows = run_comparison(spec, runners);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].trials, 4);
  // Trials 1 and 3 (cycles 20, 40) report solved=false, so they are charged
  // the full cycle budget (spec.max_cycles = 10000) in the aggregates.
  EXPECT_DOUBLE_EQ(rows[0].mean_cycles, (10.0 + 10000.0 + 30.0 + 10000.0) / 4);
  EXPECT_DOUBLE_EQ(rows[0].mean_maxcck, 100.0);
  EXPECT_DOUBLE_EQ(rows[0].solved_percent, 50.0);
  EXPECT_DOUBLE_EQ(rows[0].median_cycles, (30.0 + 10000.0) / 2);
  EXPECT_DOUBLE_EQ(rows[0].max_cycles, 10000.0);
  EXPECT_DOUBLE_EQ(rows[0].median_maxcck, 100.0);
  EXPECT_GT(rows[0].p95_cycles, 9000.0);  // the failed tail dominates
}

TEST(Runners, AwcRunnerSolvesATrivialInstance) {
  ExperimentSpec spec;
  spec.family = ProblemFamily::kColoring3;
  spec.n = 10;
  spec.instances = 1;
  spec.inits_per_instance = 2;
  spec.seed = 11;
  const std::vector<NamedRunner> runners = {
      {"Rslv", awc_runner("Rslv")},
      {"DB", db_runner()},
      {"ABT", abt_runner(true)},
  };
  const auto rows = run_comparison(spec, runners);
  for (const auto& row : rows) {
    EXPECT_DOUBLE_EQ(row.solved_percent, 100.0) << row.label;
  }
}

}  // namespace
}  // namespace discsp::analysis
