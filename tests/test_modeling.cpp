// Modeling helpers: each builder must produce exactly the intended
// solution set (checked against the centralized solver).
#include <gtest/gtest.h>

#include "csp/modeling.h"
#include "solver/backtracking.h"

namespace discsp::model {
namespace {

TEST(Modeling, NotEqual) {
  Problem p;
  p.add_variables(2, 3);
  add_not_equal(p, 0, 1);
  EXPECT_EQ(p.num_nogoods(), 3u);
  EXPECT_EQ(count_solutions(p), 6u);  // 3*3 - 3 equal pairs
  EXPECT_THROW(add_not_equal(p, 0, 0), std::invalid_argument);
}

TEST(Modeling, NotEqualMixedDomains) {
  Problem p;
  p.add_variable(2);
  p.add_variable(4);
  add_not_equal(p, 0, 1);
  EXPECT_EQ(count_solutions(p), 6u);  // 8 total - 2 equal pairs (0,0),(1,1)
}

TEST(Modeling, Equal) {
  Problem p;
  p.add_variables(2, 3);
  add_equal(p, 0, 1);
  EXPECT_EQ(count_solutions(p), 3u);
}

TEST(Modeling, AllDifferentPermutations) {
  Problem p;
  p.add_variables(3, 3);
  const VarId vars[] = {0, 1, 2};
  add_all_different(p, vars);
  EXPECT_EQ(count_solutions(p), 6u);  // 3! permutations
}

TEST(Modeling, AllDifferentOverConstrained) {
  Problem p;
  p.add_variables(4, 3);  // pigeonhole: 4 vars, 3 values
  const VarId vars[] = {0, 1, 2, 3};
  add_all_different(p, vars);
  EXPECT_EQ(count_solutions(p), 0u);
}

TEST(Modeling, MinDistance) {
  Problem p;
  p.add_variables(2, 4);
  add_min_distance(p, 0, 1, 2);
  // |a-b| >= 2 over {0..3}: (0,2)(0,3)(1,3)(2,0)(3,0)(3,1) = 6.
  EXPECT_EQ(count_solutions(p), 6u);
  EXPECT_THROW(add_min_distance(p, 0, 1, 0), std::invalid_argument);
}

TEST(Modeling, ForbiddenCombination) {
  Problem p;
  p.add_variables(2, 2);
  add_forbidden(p, {{0, 1}, {1, 1}});
  EXPECT_EQ(count_solutions(p), 3u);
}

TEST(Modeling, AllowedValues) {
  Problem p;
  p.add_variables(1, 5);
  const Value allowed[] = {1, 3};
  add_allowed_values(p, 0, allowed);
  EXPECT_EQ(count_solutions(p), 2u);
  EXPECT_THROW(add_allowed_values(p, 0, std::span<const Value>{}), std::invalid_argument);
}

TEST(Modeling, ForbiddenValue) {
  Problem p;
  p.add_variables(1, 3);
  add_forbidden_value(p, 0, 1);
  EXPECT_EQ(count_solutions(p), 2u);
}

TEST(Modeling, BinaryRelationPredicate) {
  Problem p;
  p.add_variables(2, 3);
  add_binary_relation(p, 0, 1, [](Value a, Value b) { return a < b; });
  EXPECT_EQ(count_solutions(p), 3u);  // (0,1)(0,2)(1,2)
}

TEST(Modeling, ColoringProblemBuilder) {
  const std::pair<VarId, VarId> edges[] = {{0, 1}, {1, 2}};
  const Problem p = coloring_problem(3, 2, edges);
  EXPECT_EQ(p.num_variables(), 3);
  EXPECT_EQ(p.num_nogoods(), 4u);
  EXPECT_EQ(count_solutions(p), 2u);  // path graph, 2 colors
}

}  // namespace
}  // namespace discsp::model
