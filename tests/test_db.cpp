// Distributed breakout: end-to-end solving, wave mechanics, weights.
#include <gtest/gtest.h>

#include "csp/validate.h"
#include "db/db_agent.h"
#include "db/db_solver.h"
#include "gen/coloring_gen.h"

namespace discsp {
namespace {

Problem even_cycle(int n) {
  Problem p;
  p.add_variables(n, 2);
  for (VarId u = 0; u < n; ++u) {
    const VarId v = static_cast<VarId>((u + 1) % n);
    for (Value c = 0; c < 2; ++c) p.add_nogood(Nogood{{u, c}, {v, c}});
  }
  return p;
}

TEST(Db, SolvesEvenCycleTwoColoring) {
  const Problem p = even_cycle(8);
  const auto dp = DistributedProblem::one_var_per_agent(p);
  db::DbSolver solver(dp);
  Rng rng(3);
  const auto result = solver.solve(solver.random_initial(rng), rng.derive(1));
  ASSERT_TRUE(result.metrics.solved);
  EXPECT_TRUE(validate_solution(p, result.assignment).ok);
}

TEST(Db, SolvesGeneratedColoringAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    const auto inst = gen::generate_coloring3(24, rng);
    const auto dp = gen::distribute(inst);
    db::DbSolver solver(dp);
    const auto result = solver.solve(solver.random_initial(rng), rng.derive(1));
    ASSERT_TRUE(result.metrics.solved) << "seed " << seed;
    EXPECT_TRUE(validate_solution(inst.problem, result.assignment).ok) << "seed " << seed;
  }
}

TEST(Db, AlreadySolvedCostsZeroCycles) {
  const Problem p = even_cycle(6);
  const auto dp = DistributedProblem::one_var_per_agent(p);
  db::DbSolver solver(dp);
  const FullAssignment initial{0, 1, 0, 1, 0, 1};
  const auto result = solver.solve(initial, Rng(5));
  EXPECT_TRUE(result.metrics.solved);
  EXPECT_EQ(result.metrics.cycles, 0);
}

TEST(Db, EachWaveIsOneCycle) {
  // From an unsolved start, the first possible fix lands after the ok? wave
  // (cycle 1) and the improve wave (cycle 2), then value changes are visible
  // in cycle 3's solution check => solved cycle count is odd and >= 3... but
  // the engine checks after each cycle, so the earliest is 3. Verify >= 3
  // and that DB pays more cycles than a repair needs values exchanged twice.
  const Problem p = even_cycle(4);
  const auto dp = DistributedProblem::one_var_per_agent(p);
  db::DbSolver solver(dp);
  const FullAssignment initial{0, 0, 1, 1};  // two violated edges
  const auto result = solver.solve(initial, Rng(7));
  ASSERT_TRUE(result.metrics.solved);
  EXPECT_GE(result.metrics.cycles, 3);
}

TEST(Db, DeterministicUnderFixedSeed) {
  Rng rng(11);
  const auto inst = gen::generate_coloring3(18, rng);
  const auto dp = gen::distribute(inst);
  db::DbSolver solver(dp);
  const auto initial = solver.solve(FullAssignment(18, 0), Rng(13));
  const auto repeat = solver.solve(FullAssignment(18, 0), Rng(13));
  EXPECT_EQ(initial.metrics.cycles, repeat.metrics.cycles);
  EXPECT_EQ(initial.assignment, repeat.assignment);
}

TEST(Db, CycleCapReported) {
  // Odd cycle with 2 colors is unsolvable; DB (incomplete) must hit the cap.
  Problem p;
  p.add_variables(3, 2);
  for (VarId u = 0; u < 3; ++u) {
    const VarId v = static_cast<VarId>((u + 1) % 3);
    for (Value c = 0; c < 2; ++c) p.add_nogood(Nogood{{u, c}, {v, c}});
  }
  const auto dp = DistributedProblem::one_var_per_agent(p);
  db::DbOptions options;
  options.max_cycles = 60;
  db::DbSolver solver(dp, options);
  Rng rng(17);
  const auto result = solver.solve(solver.random_initial(rng), rng.derive(1));
  EXPECT_FALSE(result.metrics.solved);
  EXPECT_TRUE(result.metrics.hit_cycle_cap);
}

TEST(DbAgent, WeightsStartAtOneAndOnlyGrow) {
  // Drive a 2-agent system where both are stuck: x0=x1 forced equal by
  // giving each the same domain value... simpler: two agents, constraint
  // forbids all four combinations except none => both always violated and
  // no improvement possible => quasi-local-minimum => weights grow.
  Problem p;
  p.add_variables(2, 1);  // single-value domains: no agent can ever move
  p.add_nogood(Nogood{{0, 0}, {1, 0}});
  const auto dp = DistributedProblem::one_var_per_agent(p);
  db::DbSolver solver(dp);
  std::vector<std::unique_ptr<sim::Agent>> agents = solver.make_agents({0, 0}, Rng(1));
  auto* agent0 = dynamic_cast<db::DbAgent*>(agents[0].get());
  ASSERT_NE(agent0, nullptr);
  EXPECT_EQ(agent0->weight_of(0), 1);

  sim::SyncEngine engine(dp.problem(), std::move(agents));
  const auto result = engine.run(20);
  EXPECT_FALSE(result.metrics.solved);
  // NOTE: agents were moved into the engine; re-fetch through the pointer we
  // kept (the engine owns them but they stay alive until engine destruction).
  EXPECT_GT(agent0->weight_of(0), 1) << "breakout must raise weights at a QLM";
}

}  // namespace
}  // namespace discsp
