// Peer supervision tests (net/supervisor.h): the coordinator-side health
// state machine (healthy -> suspect -> dead on silence, quarantine on
// malformed-frame budget), the ping cadence, and config validation.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "net/supervisor.h"

namespace discsp {
namespace {

using net::PeerHealth;
using net::PeerSupervisor;
using net::SupervisorConfig;

SupervisorConfig fast_config() {
  SupervisorConfig config;
  config.ping_interval_ms = 10;
  config.suspect_after_ms = 50;
  config.dead_after_ms = 200;
  config.malformed_budget = 3;
  config.quarantine_ms = 100;
  return config;
}

TEST(NetSupervisor, SilenceDegradesHealthyToSuspectToDead) {
  PeerSupervisor sup(fast_config(), 2);
  sup.note_attached(0, 1000);

  EXPECT_EQ(sup.health(0, 1000), PeerHealth::kHealthy);
  EXPECT_EQ(sup.health(0, 1049), PeerHealth::kHealthy);
  EXPECT_EQ(sup.health(0, 1050), PeerHealth::kSuspect);
  EXPECT_FALSE(sup.dead(0, 1199));
  EXPECT_EQ(sup.health(0, 1200), PeerHealth::kDead);
  EXPECT_TRUE(sup.dead(0, 1200));
}

TEST(NetSupervisor, TrafficResetsTheSilenceWindow) {
  PeerSupervisor sup(fast_config(), 1);
  sup.note_attached(0, 0);
  // Keep traffic flowing just under the suspect window: never degrades.
  for (std::int64_t now = 40; now <= 400; now += 40) {
    EXPECT_EQ(sup.health(0, now), PeerHealth::kHealthy) << "at " << now;
    sup.note_alive(0, now);
  }
  // Then go silent: suspect at +50, dead at +200.
  EXPECT_EQ(sup.health(0, 449), PeerHealth::kHealthy);
  EXPECT_EQ(sup.health(0, 450), PeerHealth::kSuspect);
  EXPECT_EQ(sup.health(0, 600), PeerHealth::kDead);
}

TEST(NetSupervisor, MalformedBudgetTriggersQuarantineThenReadmits) {
  PeerSupervisor sup(fast_config(), 1);
  sup.note_attached(0, 0);

  // Budget is 3 per window: the first three malformed frames are tolerated.
  EXPECT_FALSE(sup.note_malformed(0, 10));
  EXPECT_FALSE(sup.note_malformed(0, 11));
  EXPECT_FALSE(sup.note_malformed(0, 12));
  EXPECT_TRUE(sup.note_malformed(0, 13));
  EXPECT_EQ(sup.health(0, 14), PeerHealth::kQuarantined);
  EXPECT_EQ(sup.quarantines(), 1u);
  EXPECT_EQ(sup.malformed_frames(), 4u);

  // After the quarantine window the peer is readmitted (still attached and
  // recently alive, so healthy).
  sup.note_alive(0, 120);
  EXPECT_EQ(sup.health(0, 121), PeerHealth::kHealthy);
}

TEST(NetSupervisor, DetachedPeersAreDeadUntilReattach) {
  PeerSupervisor sup(fast_config(), 2);
  sup.note_attached(0, 0);
  sup.note_detached(0);
  EXPECT_EQ(sup.health(0, 1), PeerHealth::kDead);
  EXPECT_TRUE(sup.dead(0, 1));

  // A replacement attaches into the slot and starts healthy.
  sup.note_attached(0, 500);
  EXPECT_EQ(sup.health(0, 500), PeerHealth::kHealthy);

  // Never-attached slots are dead from the start.
  EXPECT_EQ(sup.health(1, 0), PeerHealth::kDead);
}

TEST(NetSupervisor, PingCadenceFollowsTheInterval) {
  PeerSupervisor sup(fast_config(), 1);
  sup.note_attached(0, 0);

  EXPECT_TRUE(sup.ping_due(0, 10));
  EXPECT_FALSE(sup.ping_due(0, 15));  // just pinged
  EXPECT_FALSE(sup.ping_due(0, 19));
  EXPECT_TRUE(sup.ping_due(0, 20));

  // Dead peers are not pinged.
  sup.note_detached(0);
  EXPECT_FALSE(sup.ping_due(0, 100));
}

SupervisorConfig phi_config() {
  SupervisorConfig config = fast_config();
  config.adaptive = true;
  config.suspect_after_ms = 250;  // the hand-tuned constant phi replaces
  config.dead_after_ms = 2000;
  config.phi_min_samples = 8;
  return config;
}

TEST(NetSupervisor, PhiFlagsAStragglerTheFixedWindowMisses) {
  // A chatty worker heartbeats every 20 ms, then stalls. At 150 ms of
  // silence the fixed 250 ms window still says healthy; the accrual model
  // built from the 20 ms gaps knows this silence is wildly improbable.
  SupervisorConfig base = fast_config();
  base.suspect_after_ms = 250;
  base.dead_after_ms = 2000;
  PeerSupervisor fixed(base, 1);
  PeerSupervisor phi(phi_config(), 1);
  for (PeerSupervisor* sup : {&fixed, &phi}) {
    sup->note_attached(0, 0);
    for (std::int64_t now = 20; now <= 400; now += 20) {
      sup->note_alive(0, now);
    }
  }
  // 150 ms into the stall (t = 550): fixed window sleeps on it...
  EXPECT_EQ(fixed.health(0, 550), PeerHealth::kHealthy);
  // ...while phi has long since crossed both thresholds.
  EXPECT_GT(phi.phi(0, 550), phi_config().phi_dead);
  EXPECT_EQ(phi.health(0, 550), PeerHealth::kDead);

  // And a naturally slow peer (300 ms cadence) is NOT suspected at a
  // silence that is normal for it — adaptivity cuts both ways.
  PeerSupervisor slow(phi_config(), 1);
  slow.note_attached(0, 0);
  for (std::int64_t now = 300; now <= 3000; now += 300) {
    slow.note_alive(0, now);
  }
  EXPECT_EQ(slow.health(0, 3250), PeerHealth::kHealthy);  // silent 250 ms
}

TEST(NetSupervisor, PhiNeedsHistoryBeforeReplacingTheFixedWindows) {
  PeerSupervisor sup(phi_config(), 1);
  sup.note_attached(0, 0);
  sup.note_alive(0, 20);
  sup.note_alive(0, 40);  // 2 gaps < phi_min_samples: still fixed windows
  EXPECT_EQ(sup.phi(0, 200), 0.0);
  EXPECT_EQ(sup.health(0, 289), PeerHealth::kHealthy);
  EXPECT_EQ(sup.health(0, 290), PeerHealth::kSuspect);  // 40 + 250
}

TEST(NetSupervisor, PhiTransitionsAreDeterministic) {
  // Same arrival schedule twice => bit-identical health at every ms. The
  // detector is a pure function of timestamps; this pins that no hidden
  // clock or randomness leaks in.
  const auto run = [] {
    PeerSupervisor sup(phi_config(), 1);
    sup.note_attached(0, 0);
    std::vector<PeerHealth> transitions;
    std::int64_t next_beat = 17;
    for (std::int64_t now = 1; now <= 2500; ++now) {
      if (now == next_beat && now <= 900) {
        sup.note_alive(0, now);
        next_beat += 17 + (now % 7);  // jittered but deterministic cadence
      }
      transitions.push_back(sup.health(0, now));
    }
    return transitions;
  };
  EXPECT_EQ(run(), run());
}

TEST(NetSupervisor, PhiDoesNotFalselySuspectBatchedCarriers) {
  // A worker heartbeats every 10 ms but its carrier coalesces frames and
  // flushes every ~50 ms (--batch-flush-us): the coordinator observes
  // arrivals at flush boundaries, not send times. The accrual model is
  // built from those observed arrivals, so one flush window of silence is
  // the learned norm — no false suspicion however bursty the carrier makes
  // the traffic look.
  const SupervisorConfig config = phi_config();
  PeerSupervisor batched(config, 1);
  batched.note_attached(0, 0);
  std::int64_t last = 0;
  for (int beat = 1; beat <= 30; ++beat) {
    // Flush boundaries with +-2 ms of deterministic carrier jitter.
    const std::int64_t at = 50 * beat + (beat % 5) - 2;
    // Health is evaluated continuously between flushes; it must never
    // degrade inside the normal flush cadence.
    for (std::int64_t now = last + 1; now < at; ++now) {
      EXPECT_EQ(batched.health(0, now), PeerHealth::kHealthy) << "at " << now;
    }
    batched.note_alive(0, at);
    last = at;
  }
  // One more full flush window of silence: still the learned cadence.
  EXPECT_EQ(batched.health(0, last + 50), PeerHealth::kHealthy);
  EXPECT_LT(batched.phi(0, last + 50), config.phi_suspect);

  // Contrast: a model built from the raw 10 ms send cadence calls that same
  // one-flush-window silence dead — observing *arrivals* is exactly what
  // saves a batched carrier from false suspicion.
  PeerSupervisor unbatched(phi_config(), 1);
  unbatched.note_attached(0, 0);
  for (std::int64_t now = 10; now <= 300; now += 10) {
    unbatched.note_alive(0, now);
  }
  EXPECT_GT(unbatched.phi(0, 350), config.phi_dead);

  // Adaptivity is not blindness: a genuine stall several flush windows deep
  // still crosses phi_dead long before the fixed dead_after_ms cap.
  EXPECT_GT(batched.phi(0, last + 200), config.phi_dead);
  EXPECT_EQ(batched.health(0, last + 200), PeerHealth::kDead);
}

TEST(NetSupervisor, PhiRespectsTheHardDeadCap) {
  // Huge observed variance would stretch phi's window far out; the fixed
  // dead_after_ms stays a hard cap regardless.
  SupervisorConfig config = phi_config();
  config.phi_dead = 1e9;  // phi alone would never kill
  PeerSupervisor sup(config, 1);
  sup.note_attached(0, 0);
  for (std::int64_t now = 100; now <= 1000; now += 100) {
    sup.note_alive(0, now);
  }
  EXPECT_TRUE(sup.dead(0, 1000 + config.dead_after_ms));
}

TEST(NetSupervisor, PingStormIsSuppressedByTheGlobalBudget) {
  // 8 peers all due in the same tick (a coordinator stall just ended, every
  // peer looks suspect at once): the budget grants 3 pings per interval and
  // the rest wait — suppressed peers keep their place in line because their
  // ping clock is untouched.
  SupervisorConfig config = fast_config();
  config.ping_burst = 3;
  PeerSupervisor sup(config, 8);
  for (int peer = 0; peer < 8; ++peer) sup.note_attached(peer, 0);

  std::vector<std::int64_t> first_ping(8, -1);
  const auto sweep = [&](std::int64_t now) {
    int granted = 0;
    for (int peer = 0; peer < 8; ++peer) {
      if (sup.ping_due(peer, now)) {
        ++granted;
        if (first_ping[peer] < 0) first_ping[peer] = now;
      }
    }
    return granted;
  };

  EXPECT_EQ(sweep(100), 3);
  // Same window: budget exhausted for everyone.
  EXPECT_EQ(sweep(105), 0);
  // Later windows grant 3 each, most-overdue first — the suppressed peers
  // are served before the already-pinged ones re-enter the line.
  EXPECT_EQ(sweep(110), 3);
  EXPECT_EQ(sweep(120), 3);
  for (int peer = 0; peer < 8; ++peer) {
    EXPECT_GE(first_ping[peer], 0) << "peer " << peer << " was starved";
    EXPECT_LE(first_ping[peer], 120);
  }

  // With no budget configured the storm goes out unthrottled (default).
  PeerSupervisor unbounded(fast_config(), 8);
  for (int peer = 0; peer < 8; ++peer) unbounded.note_attached(peer, 0);
  int granted = 0;
  for (int peer = 0; peer < 8; ++peer) granted += unbounded.ping_due(peer, 100);
  EXPECT_EQ(granted, 8);
}

TEST(NetSupervisor, ConfigValidationRejectsBadPhiKnobs) {
  SupervisorConfig config = phi_config();
  config.phi_dead = config.phi_suspect;  // must be strictly above
  EXPECT_THROW(config.validate(), std::invalid_argument);

  config = phi_config();
  config.phi_window = 1;
  EXPECT_THROW(config.validate(), std::invalid_argument);

  config = phi_config();
  config.phi_min_samples = config.phi_window + 1;
  EXPECT_THROW(config.validate(), std::invalid_argument);

  config = phi_config();
  config.phi_min_std_ms = 0.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);

  config = phi_config();
  config.ping_burst = -1;
  EXPECT_THROW(config.validate(), std::invalid_argument);

  EXPECT_NO_THROW(phi_config().validate());
  // The phi knobs are ignored (not validated) while adaptive is off.
  config = fast_config();
  config.phi_window = 0;
  EXPECT_NO_THROW(config.validate());
}

TEST(NetSupervisor, ConfigValidationRejectsBadWindows) {
  SupervisorConfig config = fast_config();
  config.suspect_after_ms = config.dead_after_ms;  // must be strictly below
  EXPECT_THROW(config.validate(), std::invalid_argument);

  config = fast_config();
  config.ping_interval_ms = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);

  config = fast_config();
  config.quarantine_ms = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);

  EXPECT_NO_THROW(fast_config().validate());
}

}  // namespace
}  // namespace discsp
