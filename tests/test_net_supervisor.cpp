// Peer supervision tests (net/supervisor.h): the coordinator-side health
// state machine (healthy -> suspect -> dead on silence, quarantine on
// malformed-frame budget), the ping cadence, and config validation.
#include <gtest/gtest.h>

#include <stdexcept>

#include "net/supervisor.h"

namespace discsp {
namespace {

using net::PeerHealth;
using net::PeerSupervisor;
using net::SupervisorConfig;

SupervisorConfig fast_config() {
  SupervisorConfig config;
  config.ping_interval_ms = 10;
  config.suspect_after_ms = 50;
  config.dead_after_ms = 200;
  config.malformed_budget = 3;
  config.quarantine_ms = 100;
  return config;
}

TEST(NetSupervisor, SilenceDegradesHealthyToSuspectToDead) {
  PeerSupervisor sup(fast_config(), 2);
  sup.note_attached(0, 1000);

  EXPECT_EQ(sup.health(0, 1000), PeerHealth::kHealthy);
  EXPECT_EQ(sup.health(0, 1049), PeerHealth::kHealthy);
  EXPECT_EQ(sup.health(0, 1050), PeerHealth::kSuspect);
  EXPECT_FALSE(sup.dead(0, 1199));
  EXPECT_EQ(sup.health(0, 1200), PeerHealth::kDead);
  EXPECT_TRUE(sup.dead(0, 1200));
}

TEST(NetSupervisor, TrafficResetsTheSilenceWindow) {
  PeerSupervisor sup(fast_config(), 1);
  sup.note_attached(0, 0);
  // Keep traffic flowing just under the suspect window: never degrades.
  for (std::int64_t now = 40; now <= 400; now += 40) {
    EXPECT_EQ(sup.health(0, now), PeerHealth::kHealthy) << "at " << now;
    sup.note_alive(0, now);
  }
  // Then go silent: suspect at +50, dead at +200.
  EXPECT_EQ(sup.health(0, 449), PeerHealth::kHealthy);
  EXPECT_EQ(sup.health(0, 450), PeerHealth::kSuspect);
  EXPECT_EQ(sup.health(0, 600), PeerHealth::kDead);
}

TEST(NetSupervisor, MalformedBudgetTriggersQuarantineThenReadmits) {
  PeerSupervisor sup(fast_config(), 1);
  sup.note_attached(0, 0);

  // Budget is 3 per window: the first three malformed frames are tolerated.
  EXPECT_FALSE(sup.note_malformed(0, 10));
  EXPECT_FALSE(sup.note_malformed(0, 11));
  EXPECT_FALSE(sup.note_malformed(0, 12));
  EXPECT_TRUE(sup.note_malformed(0, 13));
  EXPECT_EQ(sup.health(0, 14), PeerHealth::kQuarantined);
  EXPECT_EQ(sup.quarantines(), 1u);
  EXPECT_EQ(sup.malformed_frames(), 4u);

  // After the quarantine window the peer is readmitted (still attached and
  // recently alive, so healthy).
  sup.note_alive(0, 120);
  EXPECT_EQ(sup.health(0, 121), PeerHealth::kHealthy);
}

TEST(NetSupervisor, DetachedPeersAreDeadUntilReattach) {
  PeerSupervisor sup(fast_config(), 2);
  sup.note_attached(0, 0);
  sup.note_detached(0);
  EXPECT_EQ(sup.health(0, 1), PeerHealth::kDead);
  EXPECT_TRUE(sup.dead(0, 1));

  // A replacement attaches into the slot and starts healthy.
  sup.note_attached(0, 500);
  EXPECT_EQ(sup.health(0, 500), PeerHealth::kHealthy);

  // Never-attached slots are dead from the start.
  EXPECT_EQ(sup.health(1, 0), PeerHealth::kDead);
}

TEST(NetSupervisor, PingCadenceFollowsTheInterval) {
  PeerSupervisor sup(fast_config(), 1);
  sup.note_attached(0, 0);

  EXPECT_TRUE(sup.ping_due(0, 10));
  EXPECT_FALSE(sup.ping_due(0, 15));  // just pinged
  EXPECT_FALSE(sup.ping_due(0, 19));
  EXPECT_TRUE(sup.ping_due(0, 20));

  // Dead peers are not pinged.
  sup.note_detached(0);
  EXPECT_FALSE(sup.ping_due(0, 100));
}

TEST(NetSupervisor, ConfigValidationRejectsBadWindows) {
  SupervisorConfig config = fast_config();
  config.suspect_after_ms = config.dead_after_ms;  // must be strictly below
  EXPECT_THROW(config.validate(), std::invalid_argument);

  config = fast_config();
  config.ping_interval_ms = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);

  config = fast_config();
  config.quarantine_ms = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);

  EXPECT_NO_THROW(fast_config().validate());
}

}  // namespace
}  // namespace discsp
