// Two-watched-literal kernel: the watched NogoodStore must be
// observationally identical to the counter kernel — same violated sets,
// same O(1) counts, same per-nogood predicates, and (because the LRU
// eviction guard reads those predicates) the same eviction choices — under
// arbitrary interleavings of adds, view flips, removals, capacity changes
// and crash-style view clears. On top of the store-level agreement, the
// agents running on the watched kernel must report paper metrics
// bit-identical to both the counter kernel and the flat-scan path,
// mirroring the PR 3 suite in test_incremental_view.cpp.
#include <gtest/gtest.h>

#include <vector>

#include "analysis/experiment.h"
#include "common/rng.h"
#include "csp/nogood_store.h"

namespace discsp {
namespace {

// Brute-force reference: indices of the nogoods violated under the store's
// mirrored view with x_own = d.
std::vector<std::uint32_t> brute_violated(const NogoodStore& store, Value d) {
  std::vector<std::uint32_t> out;
  const auto lookup = [&](VarId v) {
    return v == store.own() ? d : store.view_value(v);
  };
  for (std::size_t i = 0; i < store.size(); ++i) {
    if (store.at(i).violated_by(lookup)) out.push_back(static_cast<std::uint32_t>(i));
  }
  return out;
}

// The two kernels (plus brute force) must agree on every observable.
void expect_kernels_agree(const NogoodStore& counters, const NogoodStore& watched,
                          int domain_size) {
  ASSERT_EQ(watched.size(), counters.size());
  ASSERT_EQ(watched.evictions(), counters.evictions());
  ASSERT_EQ(watched.last_eviction().has_value(), counters.last_eviction().has_value());
  if (watched.last_eviction().has_value()) {
    ASSERT_EQ(*watched.last_eviction(), *counters.last_eviction());
  }
  for (Value d = 0; d < domain_size; ++d) {
    const auto expected = brute_violated(watched, d);
    std::vector<std::uint32_t> got_watched, got_counters;
    watched.violated_with_own(d, got_watched);
    counters.violated_with_own(d, got_counters);
    ASSERT_EQ(got_watched, expected) << "own value " << d;
    ASSERT_EQ(got_counters, expected) << "own value " << d;
    ASSERT_EQ(watched.violated_count(d), expected.size()) << "own value " << d;
  }
  for (std::size_t i = 0; i < watched.size(); ++i) {
    ASSERT_EQ(watched.at(i), counters.at(i)) << i;  // identical index layout
    ASSERT_EQ(watched.matched_except_own(i), counters.matched_except_own(i)) << i;
    ASSERT_EQ(watched.currently_violated(i), counters.currently_violated(i)) << i;
  }
}

Nogood random_nogood(Rng& rng, VarId own, int num_vars, int domain_size) {
  std::vector<Assignment> items;
  items.push_back({own, static_cast<Value>(rng.index(static_cast<std::size_t>(domain_size)))});
  for (VarId v = 0; v < num_vars; ++v) {
    if (v == own || rng.index(3) != 0) continue;
    items.push_back({v, static_cast<Value>(rng.index(static_cast<std::size_t>(domain_size)))});
  }
  return Nogood(std::move(items));
}

// Differential fuzzer: drive a counter store and a watched store through
// the same operation stream; they must agree after every single step.
TEST(WatchedKernel, AgreesWithCountersUnderRandomChurn) {
  constexpr VarId kOwn = 2;
  constexpr int kVars = 6;
  constexpr int kDomain = 3;
  Rng rng(0xfadeULL);
  NogoodStore counters(kOwn, kDomain, StoreKernel::kCounters);
  NogoodStore watched(kOwn, kDomain, StoreKernel::kWatched);
  ASSERT_EQ(watched.kernel(), StoreKernel::kWatched);
  counters.set_own_value(0);
  watched.set_own_value(0);

  for (int step = 0; step < 2000; ++step) {
    switch (rng.index(12)) {
      case 0:
      case 1:
      case 2:
      case 3: {  // add (duplicates exercised on purpose)
        const Nogood ng = random_nogood(rng, kOwn, kVars, kDomain);
        ASSERT_EQ(watched.add(ng), counters.add(ng));
        break;
      }
      case 4:
      case 5:
      case 6: {  // view update, including "unknown"
        VarId v;
        do {
          v = static_cast<VarId>(rng.index(kVars));
        } while (v == kOwn);
        const Value val = rng.index(4) == 0
                              ? kNoValue
                              : static_cast<Value>(rng.index(kDomain));
        counters.set_view(v, val);
        watched.set_view(v, val);
        break;
      }
      case 7: {  // own move
        const auto val = static_cast<Value>(rng.index(kDomain));
        counters.set_own_value(val);
        watched.set_own_value(val);
        break;
      }
      case 8: {  // journal-replay removal by content
        if (counters.size() > 0) {
          const Nogood ng = counters.at(rng.index(counters.size()));
          ASSERT_EQ(watched.remove(ng), counters.remove(ng));
        }
        break;
      }
      case 9: {  // recency signal feeding the LRU eviction
        if (counters.size() > 0) {
          const std::size_t idx = rng.index(counters.size());
          counters.note_violation(idx);
          watched.note_violation(idx);
        }
        break;
      }
      case 10: {  // tighten/loosen the learned bound (forces evictions)
        const std::size_t cap = rng.index(2) == 0 ? 0 : 3 + rng.index(5);
        counters.set_capacity(cap);
        watched.set_capacity(cap);
        break;
      }
      case 11: {  // crash: the agent forgets its view
        counters.clear_view();
        watched.clear_view();
        break;
      }
    }
    expect_kernels_agree(counters, watched, kDomain);
  }
  EXPECT_GT(watched.size(), 0u);
  EXPECT_GT(watched.evictions(), 0u);  // the eviction guard really ran
}

TEST(WatchedKernel, SurvivesReplayStyleRebuild) {
  // The amnesia-recovery path: rebuild fresh stores, replay add/remove
  // records, then re-learn the view — agreement at every stage.
  constexpr VarId kOwn = 0;
  constexpr int kDomain = 3;
  Rng rng(0xbeadULL);
  std::vector<Nogood> journal;
  for (int i = 0; i < 40; ++i) journal.push_back(random_nogood(rng, kOwn, 5, kDomain));

  NogoodStore counters(kOwn, kDomain, StoreKernel::kCounters);
  NogoodStore watched(kOwn, kDomain, StoreKernel::kWatched);
  for (const Nogood& ng : journal) {
    counters.add(ng);
    watched.add(ng);
  }
  for (std::size_t i = 0; i < journal.size(); i += 3) {
    counters.remove(journal[i]);
    watched.remove(journal[i]);
  }
  expect_kernels_agree(counters, watched, kDomain);

  counters.set_own_value(1);
  watched.set_own_value(1);
  for (VarId v = 1; v <= 4; ++v) {
    const auto val = static_cast<Value>(rng.index(kDomain));
    counters.set_view(v, val);
    watched.set_view(v, val);
  }
  expect_kernels_agree(counters, watched, kDomain);

  counters.clear_view();
  watched.clear_view();
  expect_kernels_agree(counters, watched, kDomain);
  counters.set_view(2, 1);
  watched.set_view(2, 1);
  expect_kernels_agree(counters, watched, kDomain);
}

// Directed exercise of the demotion path: drive one nogood through
// violated -> demoted -> re-violated cycles, where the lazily-unwatched
// all-watch entries must neither leak wrong answers nor duplicate watches.
TEST(WatchedKernel, LazyUnwatchSurvivesRepeatedDemotion) {
  NogoodStore store(0, 2, StoreKernel::kWatched);
  store.set_own_value(1);
  store.add(Nogood{{0, 1}, {1, 0}, {2, 0}, {3, 0}});
  for (int round = 0; round < 50; ++round) {
    for (VarId v = 1; v <= 3; ++v) store.set_view(v, 0);  // all matched
    ASSERT_EQ(store.violated_count(1), 1u) << round;
    ASSERT_TRUE(store.currently_violated(0)) << round;
    const VarId flip = static_cast<VarId>(1 + round % 3);
    store.set_view(flip, 1);  // un-match one literal: demote
    ASSERT_EQ(store.violated_count(1), 0u) << round;
    store.set_view(flip, kNoValue);  // and through "unknown" as well
    ASSERT_EQ(store.violated_count(1), 0u) << round;
  }
}

// --- paper-metric bit-identity across kernels (mirrors the PR 3 suite) ---

void expect_rows_identical_except_work(const analysis::AggregateRow& a,
                                       const analysis::AggregateRow& b) {
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_EQ(a.mean_cycles, b.mean_cycles);
  EXPECT_EQ(a.mean_maxcck, b.mean_maxcck);
  EXPECT_EQ(a.solved_percent, b.solved_percent);
  EXPECT_EQ(a.mean_nogoods_generated, b.mean_nogoods_generated);
  EXPECT_EQ(a.mean_redundant_generations, b.mean_redundant_generations);
  EXPECT_EQ(a.median_cycles, b.median_cycles);
  EXPECT_EQ(a.p95_cycles, b.p95_cycles);
  EXPECT_EQ(a.max_cycles, b.max_cycles);
  EXPECT_EQ(a.median_maxcck, b.median_maxcck);
  EXPECT_EQ(a.mean_total_checks, b.mean_total_checks);
}

analysis::ExperimentSpec small_spec(analysis::ProblemFamily family, int n) {
  analysis::ExperimentSpec spec;
  spec.family = family;
  spec.n = n;
  spec.instances = 2;
  spec.inits_per_instance = 3;
  spec.seed = 20000704;
  spec.max_cycles = 2000;
  return spec;
}

TEST(WatchedKernel, AwcMetricsBitIdenticalAcrossKernels) {
  const auto spec = small_spec(analysis::ProblemFamily::kColoring3, 24);
  const auto row_for = [&](bool incremental, StoreKernel kernel) {
    const std::vector<analysis::NamedRunner> runners = {
        {"Rslv", analysis::awc_runner("Rslv", true, spec.max_cycles, incremental,
                                      kernel)}};
    return analysis::run_comparison(spec, runners)[0];
  };
  const auto watched = row_for(true, StoreKernel::kWatched);
  expect_rows_identical_except_work(watched, row_for(true, StoreKernel::kCounters));
  expect_rows_identical_except_work(watched, row_for(false, StoreKernel::kCounters));
  EXPECT_GT(watched.mean_total_checks, 0.0);
}

TEST(WatchedKernel, AbtMetricsBitIdenticalAcrossKernels) {
  const auto spec = small_spec(analysis::ProblemFamily::kColoring3, 16);
  for (bool use_resolvent : {false, true}) {
    const auto row_for = [&](bool incremental, StoreKernel kernel) {
      const std::vector<analysis::NamedRunner> runners = {
          {"ABT", analysis::abt_runner(use_resolvent, spec.max_cycles, incremental,
                                       kernel)}};
      return analysis::run_comparison(spec, runners)[0];
    };
    const auto watched = row_for(true, StoreKernel::kWatched);
    expect_rows_identical_except_work(watched, row_for(true, StoreKernel::kCounters));
    expect_rows_identical_except_work(watched, row_for(false, StoreKernel::kCounters));
  }
}

TEST(WatchedKernel, DbMetricsBitIdenticalAcrossKernels) {
  const auto spec = small_spec(analysis::ProblemFamily::kSat3, 20);
  const auto row_for = [&](bool incremental, StoreKernel kernel) {
    const std::vector<analysis::NamedRunner> runners = {
        {"DB", analysis::db_runner(spec.max_cycles, incremental, kernel)}};
    return analysis::run_comparison(spec, runners)[0];
  };
  const auto watched = row_for(true, StoreKernel::kWatched);
  expect_rows_identical_except_work(watched, row_for(true, StoreKernel::kCounters));
  expect_rows_identical_except_work(watched, row_for(false, StoreKernel::kCounters));
}

TEST(WatchedKernel, WatchedWalkDoesLessWorkOnViewUpdates) {
  // The hot path the kernel exists for: a grown store absorbing view deltas.
  // A counter update walks the changed variable's whole occurrence list; the
  // watched walk touches only the (at most 2-per-nogood) watch entries, so
  // its per-delta work must be well below the counter kernel's once the
  // store is large. Inserts/rebuilds are excluded — at toy scale their
  // attach cost can exceed the walk savings (the full Table-2-scale >= 1.5x
  // end-to-end floor is gated by bench_micro_core + tools/bench_check.py).
  constexpr VarId kOwn = 0;
  constexpr int kVars = 60;
  constexpr int kDomain = 3;
  Rng rng(0xcafeULL);
  NogoodStore counters(kOwn, kDomain, StoreKernel::kCounters);
  NogoodStore watched(kOwn, kDomain, StoreKernel::kWatched);
  for (int i = 0; i < 400; ++i) {
    // Learned-style nogoods: own binding plus ~8 other literals, so the
    // occurrence lists are long while the watch count stays 2 per nogood.
    std::vector<Assignment> items{{kOwn, static_cast<Value>(rng.index(kDomain))}};
    while (items.size() < 9) {
      const auto v = static_cast<VarId>(1 + rng.index(kVars - 1));
      bool dup = false;
      for (const Assignment& a : items) dup = dup || a.var == v;
      if (!dup) items.push_back({v, static_cast<Value>(rng.index(kDomain))});
    }
    const Nogood ng{std::move(items)};
    counters.add(ng);
    watched.add(ng);
  }
  const std::uint64_t counters_before = counters.work_ops();
  const std::uint64_t watched_before = watched.work_ops();
  for (int step = 0; step < 2000; ++step) {
    const VarId v = static_cast<VarId>(1 + rng.index(kVars - 1));
    const Value val = rng.index(4) == 0 ? kNoValue
                                        : static_cast<Value>(rng.index(kDomain));
    counters.set_view(v, val);
    watched.set_view(v, val);
  }
  expect_kernels_agree(counters, watched, kDomain);
  const auto counters_work = static_cast<double>(counters.work_ops() - counters_before);
  const auto watched_work = static_cast<double>(watched.work_ops() - watched_before);
  ASSERT_GT(watched_work, 0.0);
  EXPECT_GE(counters_work / watched_work, 1.5)
      << "watched " << watched_work << " vs counters " << counters_work;
}

}  // namespace
}  // namespace discsp
