// Synchronous engine semantics, validated with scripted mock agents:
// next-cycle delivery, maxcck aggregation, quiescence, solution detection.
#include <gtest/gtest.h>

#include "sim/sync_engine.h"

namespace discsp::sim {
namespace {

/// Scripted agent: starts with a value; optionally sends its value to a
/// peer at start; flips its value when told a specific value; burns a fixed
/// number of "checks" per compute when it received something.
class MockAgent final : public Agent {
 public:
  MockAgent(AgentId id, VarId var, Value value, AgentId peer, std::uint64_t checks_per_msg)
      : id_(id), var_(var), value_(value), peer_(peer), checks_per_msg_(checks_per_msg) {}

  AgentId id() const override { return id_; }
  VarId variable() const override { return var_; }
  Value current_value() const override { return value_; }

  void start(MessageSink& out) override {
    if (peer_ != kNoAgent) {
      out.send(peer_, OkMessage{.sender = id_, .var = var_, .value = value_, .priority = 0});
    }
  }

  void receive(const MessagePayload& msg) override {
    received_.push_back(std::get<OkMessage>(msg));
  }

  void compute(MessageSink&) override {
    for (const OkMessage& m : received_) {
      checks_ += checks_per_msg_;
      // Adopt a value one above the sender's: makes delivery order visible.
      value_ = m.value + 1;
    }
    received_.clear();
  }

  std::uint64_t take_checks() override {
    const auto c = checks_;
    checks_ = 0;
    return c;
  }

  int messages_seen = 0;

 private:
  AgentId id_;
  VarId var_;
  Value value_;
  AgentId peer_;
  std::uint64_t checks_per_msg_;
  std::uint64_t checks_ = 0;
  std::vector<OkMessage> received_;
};

Problem free_problem(int n, int domain) {
  Problem p;
  p.add_variables(n, domain);
  return p;
}

TEST(SyncEngine, ImmediateSolutionWhenUnconstrained) {
  Problem p = free_problem(2, 5);
  std::vector<std::unique_ptr<Agent>> agents;
  agents.push_back(std::make_unique<MockAgent>(0, 0, 1, kNoAgent, 0));
  agents.push_back(std::make_unique<MockAgent>(1, 1, 2, kNoAgent, 0));
  SyncEngine engine(p, std::move(agents));
  const auto result = engine.run(10);
  EXPECT_TRUE(result.metrics.solved);
  EXPECT_EQ(result.metrics.cycles, 0);
  EXPECT_EQ(result.assignment, (FullAssignment{1, 2}));
}

TEST(SyncEngine, MessagesArriveNextCycle) {
  // Constraint forbids the initial state so the run has to progress; agent 1
  // flips to (sender value + 1) == 2 once agent 0's start message arrives.
  Problem p = free_problem(2, 5);
  p.add_nogood(Nogood{{0, 1}, {1, 1}});
  std::vector<std::unique_ptr<Agent>> agents;
  agents.push_back(std::make_unique<MockAgent>(0, 0, 1, 1, 0));
  agents.push_back(std::make_unique<MockAgent>(1, 1, 1, kNoAgent, 0));
  SyncEngine engine(p, std::move(agents));
  const auto result = engine.run(10);
  EXPECT_TRUE(result.metrics.solved);
  EXPECT_EQ(result.metrics.cycles, 1) << "delivery happens exactly one cycle after send";
  EXPECT_EQ(result.assignment, (FullAssignment{1, 2}));
  EXPECT_EQ(result.metrics.messages, 1u);
}

TEST(SyncEngine, MaxcckTakesTheMaxAcrossAgents) {
  Problem p = free_problem(3, 9);
  p.add_nogood(Nogood{{0, 0}, {1, 0}, {2, 0}});  // violated initially
  std::vector<std::unique_ptr<Agent>> agents;
  // Agent 2 sends to both others; they burn different check counts.
  agents.push_back(std::make_unique<MockAgent>(0, 0, 0, kNoAgent, 10));
  agents.push_back(std::make_unique<MockAgent>(1, 1, 0, kNoAgent, 25));
  agents.push_back(std::make_unique<MockAgent>(2, 2, 0, 0, 0));
  // Manually also wire agent 2 -> 1 by a second mock trick: reuse start of
  // agent 0 (sends nothing). Instead: agent 2 sends only to agent 0, so in
  // cycle 1 agent 0 burns 10 checks while others burn none.
  SyncEngine engine(p, std::move(agents));
  const auto result = engine.run(10);
  EXPECT_TRUE(result.metrics.solved);
  EXPECT_EQ(result.metrics.cycles, 1);
  EXPECT_EQ(result.metrics.maxcck, 10u);
  EXPECT_EQ(result.metrics.total_checks, 10u);
}

TEST(SyncEngine, QuiescenceWithoutSolutionStops) {
  Problem p = free_problem(1, 2);
  p.add_nogood(Nogood{{0, 0}});  // initial value 0 violates; mock never moves
  std::vector<std::unique_ptr<Agent>> agents;
  agents.push_back(std::make_unique<MockAgent>(0, 0, 0, kNoAgent, 0));
  SyncEngine engine(p, std::move(agents));
  const auto result = engine.run(100);
  EXPECT_FALSE(result.metrics.solved);
  EXPECT_TRUE(engine.quiescent());
  EXPECT_FALSE(result.metrics.hit_cycle_cap);
  EXPECT_LT(result.metrics.cycles, 100);
}

TEST(SyncEngine, RejectsDuplicateVariableOwnership) {
  Problem p = free_problem(2, 2);
  std::vector<std::unique_ptr<Agent>> agents;
  agents.push_back(std::make_unique<MockAgent>(0, 0, 0, kNoAgent, 0));
  agents.push_back(std::make_unique<MockAgent>(1, 0, 0, kNoAgent, 0));
  EXPECT_THROW(SyncEngine(p, std::move(agents)), std::invalid_argument);
}

TEST(SyncEngine, RejectsUnknownVariable) {
  Problem p = free_problem(1, 2);
  std::vector<std::unique_ptr<Agent>> agents;
  agents.push_back(std::make_unique<MockAgent>(0, 7, 0, kNoAgent, 0));
  EXPECT_THROW(SyncEngine(p, std::move(agents)), std::invalid_argument);
}

TEST(SyncEngine, MessageToUnknownAgentThrows) {
  Problem p = free_problem(1, 3);
  p.add_nogood(Nogood{{0, 0}});
  std::vector<std::unique_ptr<Agent>> agents;
  agents.push_back(std::make_unique<MockAgent>(0, 0, 0, /*peer=*/5, 0));
  SyncEngine engine(p, std::move(agents));
  EXPECT_THROW(engine.run(10), std::out_of_range);
}

}  // namespace
}  // namespace discsp::sim
