// Checksummed wire format (sim/message.h), corruption fuzzing, .dcsp
// integrity digests (csp/serialize.h), and end-to-end corruption chaos.
//
// Key properties:
//  - every payload type round-trips encode -> decode bit-exactly;
//  - fuzz: every corruption mode over many seeds yields a frame that
//    decode_frame REJECTS and never crashes on — including kRewrite, whose
//    checksum verifies and which only semantic validation can catch;
//  - random garbage frames never crash the decoder;
//  - the ChannelGuard quarantines a channel that exceeds its malformed
//    budget and readmits it after the window;
//  - .dcsp files carry a structural digest: tampering is detected, clean
//    files round-trip, legacy files without the trailer still load;
//  - the ISSUE acceptance bar end to end: partitions + 1% corruption + 10%
//    drop + 5% duplication, AWC still solves >= 95% with zero monitor
//    violations, and corrupted frames show up as rejected malformed frames;
//  - ThreadRuntime rejects corrupted frames the same way (credit intact).
#include <gtest/gtest.h>

#include <sstream>

#include "awc/awc_solver.h"
#include "csp/distributed_problem.h"
#include "csp/serialize.h"
#include "csp/validate.h"
#include "gen/coloring_gen.h"
#include "learning/resolvent.h"
#include "sim/async_engine.h"
#include "sim/fault.h"
#include "sim/message.h"
#include "sim/thread_runtime.h"

namespace discsp {
namespace {

sim::WireLimits small_limits() {
  sim::WireLimits limits;
  limits.num_agents = 5;
  limits.domain_sizes = {3, 3, 4, 2, 3};
  return limits;
}

std::vector<sim::MessagePayload> sample_payloads() {
  return {
      sim::OkMessage{2, 2, 3, 4, 17},
      sim::OkMessage{0, 0, 0, 0, 0},
      sim::NogoodMessage{1, Nogood{{0, 1}, {2, 3}}},
      sim::NogoodMessage{4, Nogood{}},  // empty nogood (insolubility proof)
      sim::AddLinkMessage{3, 1},
      sim::AddLinkMessage{0, kNoVar},  // crash-recovery wildcard link request
      sim::ImproveMessage{4, 4, -12, 99, 3},
  };
}

TEST(WireFormat, AllPayloadTypesRoundTrip) {
  const sim::WireLimits limits = small_limits();
  for (const sim::MessagePayload& payload : sample_payloads()) {
    const sim::WireFrame frame = sim::encode_frame(payload);
    const sim::DecodeResult decoded = sim::decode_frame(frame, limits);
    ASSERT_TRUE(decoded.ok())
        << to_string(payload) << " rejected: " << to_string(decoded.error);
    EXPECT_EQ(to_string(*decoded.payload), to_string(payload));
    EXPECT_EQ(decoded.payload->index(), payload.index());
  }
}

TEST(WireFormat, RejectsOutOfBoundsFields) {
  const sim::WireLimits limits = small_limits();
  // Sender beyond num_agents.
  auto reject = [&](const sim::MessagePayload& payload, sim::DecodeError want) {
    const sim::WireFrame frame = sim::encode_frame(payload);
    const sim::DecodeResult decoded = sim::decode_frame(frame, limits);
    EXPECT_FALSE(decoded.ok()) << to_string(payload) << " was accepted";
    EXPECT_EQ(decoded.error, want) << to_string(payload);
  };
  reject(sim::OkMessage{9, 0, 0, 0, 1}, sim::DecodeError::kBadAgent);
  reject(sim::OkMessage{1, 7, 0, 0, 1}, sim::DecodeError::kBadVar);
  reject(sim::OkMessage{1, 3, 2, 0, 1}, sim::DecodeError::kBadValue);  // dom(3)=2
  reject(sim::OkMessage{1, 0, 0, 0, sim::WireLimits::kMaxSeq + 1},
         sim::DecodeError::kBadBounds);
  reject(sim::NogoodMessage{1, Nogood{{0, 1}, {6, 0}}}, sim::DecodeError::kBadVar);
  reject(sim::NogoodMessage{1, Nogood{{3, 1}, {2, 9}}}, sim::DecodeError::kBadValue);
  reject(sim::AddLinkMessage{1, 12}, sim::DecodeError::kBadVar);
  reject(sim::ImproveMessage{1, 1, sim::WireLimits::kMaxMagnitude + 1, 0, 1},
         sim::DecodeError::kBadBounds);
}

TEST(WireFormat, FuzzedCorruptionIsAlwaysRejected) {
  // The detection guarantee behind the chaos suites: for every payload type,
  // every corruption mode, and many operand seeds, the mutated frame must be
  // rejected — and must never crash the decoder. kRewrite fixes the checksum
  // up, so this also proves semantic validation pulls its weight.
  const sim::WireLimits limits = small_limits();
  int rewrites_passing_checksum = 0;
  for (const sim::MessagePayload& payload : sample_payloads()) {
    const sim::WireFrame original = sim::encode_frame(payload);
    for (const sim::CorruptMode mode :
         {sim::CorruptMode::kBitFlip, sim::CorruptMode::kTruncate,
          sim::CorruptMode::kRewrite}) {
      for (std::uint64_t r = 0; r < 500; ++r) {
        sim::WireFrame frame = original;
        sim::apply_corruption(frame, mode, r * 0x9e3779b97f4a7c15ULL + 1, r + 7);
        ASSERT_NE(frame, original) << "corruption must change the frame";
        const sim::DecodeResult decoded = sim::decode_frame(frame, limits);
        ASSERT_FALSE(decoded.ok())
            << "corrupted frame accepted (mode " << static_cast<int>(mode)
            << ", r=" << r << ", payload " << to_string(payload) << ")";
        if (mode == sim::CorruptMode::kRewrite &&
            decoded.error != sim::DecodeError::kChecksum) {
          ++rewrites_passing_checksum;
        }
      }
    }
  }
  EXPECT_GT(rewrites_passing_checksum, 0)
      << "kRewrite never exercised semantic validation";
}

TEST(WireFormat, FaultLayerCorruptFrameIsAlwaysRejected) {
  // corrupt_frame is what the engines actually apply (mode and operands
  // derived from the verdict's seed); same guarantee, one level up.
  const sim::WireLimits limits = small_limits();
  for (const sim::MessagePayload& payload : sample_payloads()) {
    const sim::WireFrame original = sim::encode_frame(payload);
    for (std::uint64_t seed = 1; seed <= 1000; ++seed) {
      sim::WireFrame frame = original;
      sim::corrupt_frame(frame, seed);
      ASSERT_NE(frame, original);
      ASSERT_FALSE(sim::decode_frame(frame, limits).ok())
          << "seed " << seed << " produced an accepted corruption of "
          << to_string(payload);
    }
  }
}

TEST(WireFormat, RandomGarbageNeverCrashesTheDecoder) {
  const sim::WireLimits limits = small_limits();
  Rng rng(0xfeed);
  for (int i = 0; i < 2000; ++i) {
    sim::WireFrame frame(rng.index(12));
    for (auto& w : frame) w = rng.next();
    const sim::DecodeResult decoded = sim::decode_frame(frame, limits);
    if (decoded.ok()) {
      // Astronomically unlikely (the checksum must verify), but if it ever
      // happens the payload must at least be semantically valid.
      EXPECT_TRUE(decoded.payload.has_value());
    }
  }
}

TEST(ChannelGuardPolicy, QuarantinesOverBudgetAndReadmits) {
  sim::ChannelGuard guard(/*num_agents=*/3, /*budget=*/2, /*duration=*/100);
  EXPECT_FALSE(guard.is_quarantined(0, 1, 0));
  EXPECT_FALSE(guard.record_malformed(0, 1, 10));  // 1 <= budget
  EXPECT_FALSE(guard.record_malformed(0, 1, 11));  // 2 <= budget
  EXPECT_TRUE(guard.record_malformed(0, 1, 12));   // 3 > budget -> quarantine
  EXPECT_TRUE(guard.is_quarantined(0, 1, 12));
  EXPECT_TRUE(guard.is_quarantined(0, 1, 111));
  EXPECT_FALSE(guard.is_quarantined(1, 0, 12)) << "channels are directional";
  EXPECT_FALSE(guard.is_quarantined(0, 2, 12));
  // Window elapses: readmitted, budget reset.
  EXPECT_FALSE(guard.is_quarantined(0, 1, 112));
  EXPECT_FALSE(guard.record_malformed(0, 1, 113));
  EXPECT_EQ(guard.malformed_frames(), 4u);
  EXPECT_EQ(guard.quarantines(), 1u);
}

TEST(ChannelGuardPolicy, ZeroBudgetCountsButNeverQuarantines) {
  sim::ChannelGuard guard(2, /*budget=*/0, /*duration=*/100);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(guard.record_malformed(0, 1, i));
  }
  EXPECT_FALSE(guard.is_quarantined(0, 1, 20));
  EXPECT_EQ(guard.malformed_frames(), 20u);
  EXPECT_EQ(guard.quarantines(), 0u);
}

TEST(DcspDigest, TamperedFileIsRejected) {
  Rng rng(31337);
  const auto instance = gen::generate_coloring3(12, rng);
  const auto dp = gen::distribute(instance);

  std::stringstream clean;
  write_distributed(clean, dp);
  const std::string text = clean.str();
  ASSERT_NE(text.find("check "), std::string::npos) << "writer must emit a digest";

  // Clean round trip, digest intact.
  {
    std::istringstream in(text);
    const DistributedProblem back = read_distributed(in);
    EXPECT_EQ(distributed_digest(back), distributed_digest(dp));
  }
  // Flip one nogood value: structural digest mismatch must throw.
  {
    std::string tampered = text;
    const auto pos = tampered.find("nogood ");
    ASSERT_NE(pos, std::string::npos);
    const auto line_end = tampered.find('\n', pos);
    std::string line = tampered.substr(pos, line_end - pos);
    // "nogood <var> <val> <var> <val>": bump the last value within domain.
    const auto last_space = line.rfind(' ');
    const int old_value = std::stoi(line.substr(last_space + 1));
    line = line.substr(0, last_space + 1) + std::to_string((old_value + 1) % 3);
    tampered = tampered.substr(0, pos) + line + tampered.substr(line_end);
    std::istringstream in(tampered);
    EXPECT_THROW(read_distributed(in), std::runtime_error);
  }
  // Garbage digest line.
  {
    std::istringstream in("dcsp 1\nvars 1\ndomain 0 2\ncheck zzzz\n");
    EXPECT_THROW(read_distributed(in), std::runtime_error);
  }
  // Legacy file without a trailer still loads.
  {
    std::string legacy = text;
    const auto pos = legacy.find("check ");
    legacy.resize(pos);
    std::istringstream in(legacy);
    const DistributedProblem back = read_distributed(in);
    EXPECT_EQ(distributed_digest(back), distributed_digest(dp));
  }
}

TEST(CorruptionChaos, AcceptanceBarPartitionsPlusCorruption) {
  // ISSUE acceptance bar: 1% corruption + 10% drop + 5% duplication + 2-way
  // partition episodes, ack/retransmit armed. AWC/resolvent must solve
  // >= 95% of n=30 trials, every solution validates, every corrupted frame
  // that reached a receiver was rejected (malformed counter moves, no
  // monitor violation ever fires), and no trial crashes.
  constexpr int kTrials = 20;
  int solved = 0;
  std::uint64_t corrupted = 0, malformed = 0, violations = 0;
  for (int t = 0; t < kTrials; ++t) {
    const std::uint64_t seed = 5200 + static_cast<std::uint64_t>(t);
    Rng rng(seed);
    const auto instance = gen::generate_coloring3(30, rng);
    const auto dp = gen::distribute(instance);
    FullAssignment initial(30);
    for (auto& v : initial) v = static_cast<Value>(rng.index(3));

    awc::AwcSolver solver(dp, learning::ResolventLearning{});
    sim::AsyncConfig config;
    config.faults.drop_rate = 0.10;
    config.faults.duplicate_rate = 0.05;
    config.faults.corrupt_rate = 0.01;
    config.faults.partition_interval = 400;
    config.faults.partition_duration = 150;
    config.faults.refresh_interval = 50;
    config.faults.seed = seed * 17 + 1;
    config.retransmit.ack_timeout = 40;
    config.monitor.enabled = true;
    config.monitor.planted = instance.planted;

    Rng run_rng(seed);
    sim::AsyncEngine engine(dp.problem(),
                            solver.make_agents(initial, run_rng.derive(1)),
                            config, run_rng.derive(2));
    const sim::RunResult result = engine.run();
    EXPECT_FALSE(result.metrics.insoluble) << "trial " << t;
    corrupted += result.metrics.faults.corrupted;
    malformed += result.metrics.malformed_frames;
    violations += result.metrics.monitor.violations;
    if (result.metrics.solved) {
      ++solved;
      EXPECT_TRUE(validate_solution(instance.problem, result.assignment).ok)
          << "trial " << t;
    }
  }
  EXPECT_GE(solved, (kTrials * 95 + 99) / 100)
      << "solve rate under corruption + partitions fell below 95%";
  EXPECT_GT(corrupted, 0u) << "corruption never fired";
  EXPECT_GT(malformed, 0u) << "no corrupted frame was ever rejected";
  // Delivered corruptions are all rejected; frames still in flight at run end
  // or on corrupted-and-dropped acks account for the remainder.
  EXPECT_LE(malformed, corrupted);
  EXPECT_EQ(violations, 0u)
      << "corruption slipped past validation into protocol state";
}

TEST(CorruptionChaos, QuarantineEngagesUnderHeavyCorruption) {
  // With a tiny budget and heavy corruption some channel must trip the
  // guard; the protocol still must not report false insolubility.
  Rng rng(888);
  const auto instance = gen::generate_coloring3(12, rng);
  const auto dp = gen::distribute(instance);
  FullAssignment initial(12);
  for (auto& v : initial) v = static_cast<Value>(rng.index(3));

  awc::AwcSolver solver(dp, learning::ResolventLearning{});
  sim::AsyncConfig config;
  config.faults.corrupt_rate = 0.30;
  config.faults.quarantine_budget = 1;
  config.faults.quarantine_duration = 100;
  config.faults.refresh_interval = 30;
  config.faults.seed = 1212;
  config.retransmit.ack_timeout = 40;
  config.max_activations = 300'000;

  sim::AsyncEngine engine(dp.problem(), solver.make_agents(initial, rng.derive(1)),
                          config, rng.derive(2));
  const sim::RunResult result = engine.run();
  EXPECT_FALSE(result.metrics.insoluble);
  EXPECT_GT(result.metrics.malformed_frames, 0u);
  EXPECT_GT(result.metrics.quarantines, 0u) << "guard never tripped";
  if (result.metrics.solved) {
    EXPECT_TRUE(validate_solution(instance.problem, result.assignment).ok);
  }
}

TEST(CorruptionChaos, ZeroCorruptRateKeepsHistoricalStreams) {
  // The conditional-draw guarantee: corrupt_rate == 0 must not consume any
  // channel stream state, so a lossy config behaves exactly as it did before
  // the corruption model existed.
  Rng rng(246);
  const auto instance = gen::generate_coloring3(14, rng);
  const auto dp = gen::distribute(instance);
  awc::AwcSolver solver(dp, learning::ResolventLearning{});
  const FullAssignment initial = solver.random_initial(rng);

  sim::AsyncConfig lossy;
  lossy.faults.drop_rate = 0.1;
  lossy.faults.duplicate_rate = 0.05;
  lossy.faults.refresh_interval = 40;
  lossy.faults.seed = 5050;

  sim::AsyncConfig lossy_with_zero_corrupt = lossy;
  lossy_with_zero_corrupt.faults.corrupt_rate = 0.0;  // explicit but inert

  const auto run = [&](const sim::AsyncConfig& config) {
    awc::AwcSolver s(dp, learning::ResolventLearning{});
    Rng r(1357);
    sim::AsyncEngine engine(dp.problem(), s.make_agents(initial, r.derive(1)),
                            config, r.derive(2));
    return engine.run();
  };
  const sim::RunResult a = run(lossy);
  const sim::RunResult b = run(lossy_with_zero_corrupt);
  EXPECT_EQ(a.metrics.cycles, b.metrics.cycles);
  EXPECT_EQ(a.metrics.messages, b.metrics.messages);
  EXPECT_EQ(a.metrics.faults.dropped, b.metrics.faults.dropped);
  EXPECT_EQ(a.metrics.faults.duplicated, b.metrics.faults.duplicated);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(b.metrics.faults.corrupted, 0u);
  EXPECT_EQ(b.metrics.malformed_frames, 0u);
}

TEST(CorruptionChaos, ThreadRuntimeRejectsCorruptedFrames) {
  // The wall-clock runtime shares the wire layer: corrupted frames must be
  // rejected before agent state changes, retransmit repairs them, and the
  // run still solves with credit conservation intact under the monitor.
  Rng rng(135);
  const auto instance = gen::generate_coloring3(10, rng);
  const auto dp = gen::distribute(instance);
  awc::AwcSolver solver(dp, learning::ResolventLearning{});
  const FullAssignment initial = solver.random_initial(rng);

  sim::ThreadRuntimeConfig config;
  config.use_credit_termination = true;
  config.faults.corrupt_rate = 0.05;
  config.faults.refresh_interval = 5;  // ms
  config.faults.seed = 99;
  config.retransmit.ack_timeout = 2000;  // us
  config.monitor.enabled = true;
  config.monitor.planted = instance.planted;
  sim::ThreadRuntime runtime(dp.problem(), solver.make_agents(initial, rng.derive(1)),
                             config);
  const sim::RunResult result = runtime.run();
  ASSERT_TRUE(result.metrics.solved);
  EXPECT_TRUE(validate_solution(instance.problem, result.assignment).ok);
  EXPECT_EQ(result.metrics.monitor.violations, 0u);
  if (result.metrics.faults.corrupted > 0) {
    EXPECT_GT(result.metrics.malformed_frames, 0u);
  }
}

}  // namespace
}  // namespace discsp
