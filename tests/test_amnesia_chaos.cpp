// Amnesia-crash chaos properties (the PR's acceptance gate):
//  - under amnesia crashes + drops + duplicates, journaled AWC/resolvent
//    still solves >= 95% of solvable instances with zero false insolubility;
//  - recovery is deterministic: the same seed reproduces the identical
//    post-recovery nogood store in every agent, bit for bit;
//  - a nogood capacity at 25% of the unbounded peak still solves every
//    instance and the resident learned count never exceeds the bound;
//  - the ack/retransmit failure detector repairs drops even with the
//    anti-entropy heartbeat disabled;
//  - journaled DB survives amnesia too.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "awc/awc_agent.h"
#include "awc/awc_solver.h"
#include "csp/distributed_problem.h"
#include "csp/validate.h"
#include "db/db_solver.h"
#include "gen/coloring_gen.h"
#include "learning/resolvent.h"
#include "sim/async_engine.h"

namespace discsp {
namespace {

sim::FaultConfig amnesia_faults(std::uint64_t seed) {
  sim::FaultConfig faults;
  faults.drop_rate = 0.10;
  faults.duplicate_rate = 0.05;
  faults.amnesia_rate = 0.02;
  faults.max_crashes_per_agent = 3;
  faults.refresh_interval = 50;
  faults.seed = seed * 31 + 7;
  return faults;
}

awc::AwcOptions journaled_options(std::size_t nogood_capacity = 0) {
  awc::AwcOptions options;
  options.journal = true;
  options.journal_config.checkpoint_interval = 16;
  options.nogood_capacity = nogood_capacity;
  return options;
}

struct ChaosRun {
  sim::RunResult result;
  /// Post-run learned-nogood stores, one per agent, in store order.
  std::vector<std::vector<Nogood>> stores;
  std::vector<Value> values;
};

ChaosRun run_awc_amnesia(const DistributedProblem& dp, const FullAssignment& initial,
                         std::uint64_t seed, const sim::FaultConfig& faults,
                         const awc::AwcOptions& options) {
  awc::AwcSolver solver(dp, learning::ResolventLearning{}, options);
  sim::AsyncConfig config;
  config.max_activations = 2'000'000;
  config.faults = faults;
  Rng rng(seed);
  auto agents = solver.make_agents(initial, rng.derive(1));
  std::vector<const awc::AwcAgent*> awc_agents;
  for (const auto& agent : agents) {
    awc_agents.push_back(static_cast<const awc::AwcAgent*>(agent.get()));
  }
  sim::AsyncEngine engine(dp.problem(), std::move(agents), config, rng.derive(2));
  ChaosRun run;
  run.result = engine.run();
  for (const awc::AwcAgent* agent : awc_agents) {
    const NogoodStore& store = agent->store();
    std::vector<Nogood> learned;
    for (std::size_t i = store.initial_count(); i < store.size(); ++i) {
      learned.push_back(store.at(i));
    }
    run.stores.push_back(std::move(learned));
    run.values.push_back(agent->current_value());
  }
  return run;
}

TEST(AmnesiaChaos, AcceptanceGateSolvesDespiteAmnesia) {
  // The ISSUE bar: amnesia 0.02 + 10% drop + 5% duplication, n=30 solvable
  // 3-coloring, journaled AWC/resolvent solves >= 95% of trials, never
  // reports insolubility, and every reported solution validates.
  constexpr int kTrials = 20;
  int solved = 0;
  std::uint64_t total_amnesia = 0, total_replays = 0;
  for (int t = 0; t < kTrials; ++t) {
    const std::uint64_t seed = 7000 + static_cast<std::uint64_t>(t);
    Rng rng(seed);
    const auto instance = gen::generate_coloring3(30, rng);
    const auto dp = gen::distribute(instance);
    FullAssignment initial(30);
    for (auto& v : initial) v = static_cast<Value>(rng.index(3));

    const ChaosRun run = run_awc_amnesia(dp, initial, seed, amnesia_faults(seed),
                                         journaled_options());
    ASSERT_FALSE(run.result.metrics.insoluble)
        << "amnesia faked insolubility, trial " << t;
    if (run.result.metrics.solved) {
      ++solved;
      EXPECT_TRUE(validate_solution(instance.problem, run.result.assignment).ok)
          << "trial " << t;
    }
    total_amnesia += run.result.metrics.faults.amnesia;
    total_replays += run.result.metrics.journal_replays;
  }
  EXPECT_GE(solved, (kTrials * 95 + 99) / 100)
      << "solve rate under amnesia + drop + duplication fell below 95%";
  EXPECT_GT(total_amnesia, 0u) << "no amnesia crash ever fired";
  EXPECT_EQ(total_replays, total_amnesia)
      << "every amnesia crash must trigger exactly one journal replay";
}

TEST(AmnesiaChaos, RecoveryIsDeterministic) {
  // Same instance, same seeds, amnesia on: the two runs must agree on every
  // metric and on every agent's post-recovery learned store, element by
  // element — checkpoint load + in-order replay has no hidden state.
  for (std::uint64_t seed : {501u, 502u, 503u}) {
    Rng rng(seed);
    const auto instance = gen::generate_coloring3(20, rng);
    const auto dp = gen::distribute(instance);
    FullAssignment initial(20);
    for (auto& v : initial) v = static_cast<Value>(rng.index(3));

    const ChaosRun a = run_awc_amnesia(dp, initial, seed, amnesia_faults(seed),
                                       journaled_options());
    const ChaosRun b = run_awc_amnesia(dp, initial, seed, amnesia_faults(seed),
                                       journaled_options());
    EXPECT_EQ(a.result.metrics.cycles, b.result.metrics.cycles) << "seed " << seed;
    EXPECT_EQ(a.result.metrics.maxcck, b.result.metrics.maxcck) << "seed " << seed;
    EXPECT_EQ(a.result.metrics.faults.amnesia, b.result.metrics.faults.amnesia);
    EXPECT_EQ(a.result.metrics.journal_replays, b.result.metrics.journal_replays);
    EXPECT_EQ(a.result.metrics.journal_appends, b.result.metrics.journal_appends);
    EXPECT_EQ(a.result.assignment, b.result.assignment) << "seed " << seed;
    EXPECT_EQ(a.values, b.values) << "seed " << seed;
    ASSERT_EQ(a.stores.size(), b.stores.size());
    for (std::size_t i = 0; i < a.stores.size(); ++i) {
      EXPECT_EQ(a.stores[i], b.stores[i])
          << "post-recovery store of agent " << i << " diverged, seed " << seed;
    }
  }
}

TEST(AmnesiaChaos, QuarterCapacityStillSolvesWithinTheBound) {
  // Run unbounded to find the peak resident learned count, then rerun the
  // same trials with capacity = 25% of that peak: everything still solves
  // and the observed peak never exceeds the bound.
  constexpr int kTrials = 6;
  std::uint64_t unbounded_peak = 0;
  struct Trial {
    DistributedProblem dp;
    Problem problem;
    FullAssignment initial;
    std::uint64_t seed;
  };
  std::vector<Trial> trials;
  for (int t = 0; t < kTrials; ++t) {
    const std::uint64_t seed = 9100 + static_cast<std::uint64_t>(t);
    Rng rng(seed);
    const auto instance = gen::generate_coloring3(24, rng);
    auto dp = gen::distribute(instance);
    FullAssignment initial(24);
    for (auto& v : initial) v = static_cast<Value>(rng.index(3));
    trials.push_back({std::move(dp), instance.problem, std::move(initial), seed});
  }

  for (const Trial& trial : trials) {
    const ChaosRun run = run_awc_amnesia(trial.dp, trial.initial, trial.seed,
                                         amnesia_faults(trial.seed),
                                         journaled_options());
    ASSERT_TRUE(run.result.metrics.solved) << "unbounded baseline failed";
    unbounded_peak =
        std::max(unbounded_peak, run.result.metrics.peak_learned_nogoods);
  }
  ASSERT_GT(unbounded_peak, 4u) << "baseline learned too little to bound";

  const auto capacity = static_cast<std::size_t>(std::max<std::uint64_t>(
      1, unbounded_peak / 4));
  for (const Trial& trial : trials) {
    const ChaosRun run = run_awc_amnesia(trial.dp, trial.initial, trial.seed,
                                         amnesia_faults(trial.seed),
                                         journaled_options(capacity));
    ASSERT_TRUE(run.result.metrics.solved)
        << "bounded run failed at capacity " << capacity;
    EXPECT_TRUE(validate_solution(trial.problem, run.result.assignment).ok);
    EXPECT_FALSE(run.result.metrics.insoluble)
        << "eviction must never fake insolubility";
    EXPECT_LE(run.result.metrics.peak_learned_nogoods, capacity)
        << "resident learned nogoods exceeded the bound";
    for (const auto& learned : run.stores) {
      EXPECT_LE(learned.size(), capacity);
    }
  }
}

TEST(AmnesiaChaos, RetransmitRepairsDropsWithoutHeartbeat) {
  // Heartbeat off, failure detector on: selective retransmission alone must
  // carry AWC through 10% drops (the detector replaces the blind anti-
  // entropy refresh rather than hiding behind it).
  Rng rng(606);
  const auto instance = gen::generate_coloring3(16, rng);
  const auto dp = gen::distribute(instance);
  awc::AwcSolver solver(dp, learning::ResolventLearning{});
  FullAssignment initial(16);
  for (auto& v : initial) v = static_cast<Value>(rng.index(3));

  sim::AsyncConfig config;
  config.max_activations = 2'000'000;
  config.faults.drop_rate = 0.10;
  config.faults.refresh_interval = 0;  // no heartbeat fallback
  config.faults.seed = 777;
  config.retransmit.ack_timeout = 50;
  sim::AsyncEngine engine(dp.problem(), solver.make_agents(initial, rng.derive(1)),
                          config, rng.derive(2));
  const sim::RunResult result = engine.run();
  ASSERT_TRUE(result.metrics.solved);
  EXPECT_TRUE(validate_solution(instance.problem, result.assignment).ok);
  EXPECT_GT(result.metrics.retransmissions, 0u);
  EXPECT_EQ(result.metrics.heartbeats, 0u);
}

TEST(AmnesiaChaos, DbRecoversFromAmnesiaWithJournal) {
  Rng rng(808);
  const auto instance = gen::generate_coloring3(12, rng);
  const auto dp = gen::distribute(instance);
  db::DbOptions options;
  options.journal = true;
  options.journal_config.checkpoint_interval = 16;
  db::DbSolver solver(dp, options);
  FullAssignment initial(12);
  for (auto& v : initial) v = static_cast<Value>(rng.index(3));

  sim::AsyncConfig config;
  config.max_activations = 2'000'000;
  config.faults.amnesia_rate = 0.005;
  config.faults.max_crashes_per_agent = 2;
  config.faults.refresh_interval = 60;
  config.faults.seed = 4242;
  sim::AsyncEngine engine(dp.problem(), solver.make_agents(initial, rng.derive(1)),
                          config, rng.derive(2));
  const sim::RunResult result = engine.run();
  ASSERT_TRUE(result.metrics.solved);
  EXPECT_TRUE(validate_solution(instance.problem, result.assignment).ok);
  EXPECT_GT(result.metrics.faults.amnesia, 0u);
  EXPECT_EQ(result.metrics.journal_replays, result.metrics.faults.amnesia);
}

}  // namespace
}  // namespace discsp
