// Message payloads and debug rendering.
#include <gtest/gtest.h>

#include "sim/message.h"

namespace discsp::sim {
namespace {

TEST(Message, OkRendering) {
  const MessagePayload msg = OkMessage{.sender = 3, .var = 3, .value = 1, .priority = 2};
  EXPECT_EQ(to_string(msg), "ok?(a3: x3=1 prio 2)");
}

TEST(Message, NogoodRendering) {
  const MessagePayload msg = NogoodMessage{.sender = 1, .nogood = Nogood{{0, 2}, {4, 0}}};
  EXPECT_EQ(to_string(msg), "nogood(a1: ((x0,2)(x4,0)))");
}

TEST(Message, AddLinkRendering) {
  const MessagePayload msg = AddLinkMessage{.sender = 5, .var = 9};
  EXPECT_EQ(to_string(msg), "add_link(a5 wants x9)");
}

TEST(Message, ImproveRendering) {
  const MessagePayload msg =
      ImproveMessage{.sender = 2, .var = 2, .improve = 3, .eval = 7};
  EXPECT_EQ(to_string(msg), "improve(a2: improve 3 eval 7)");
}

TEST(Message, VariantHoldsAlternatives) {
  MessagePayload msg = OkMessage{};
  EXPECT_TRUE(std::holds_alternative<OkMessage>(msg));
  msg = NogoodMessage{};
  EXPECT_TRUE(std::holds_alternative<NogoodMessage>(msg));
  msg = ImproveMessage{};
  EXPECT_FALSE(std::holds_alternative<OkMessage>(msg));
}

}  // namespace
}  // namespace discsp::sim
