// Recovery-layer unit tests (src/recovery/, csp/nogood_store.h):
//  - write-ahead log: append/checkpoint accounting, log truncation, and the
//    block-reserved sequence durability used across amnesia crashes;
//  - retransmission backoff: the schedule is deterministic in the jitter
//    seed, grows exponentially, and respects the max_timeout cap;
//  - retransmit buffer: selective-repeat tracking, ack clearing, duplicate
//    suppression, false-positive counting, give-up, and amnesia forgetting;
//  - bounded nogood store: the capacity bound always holds and eviction
//    never removes an initial, unit, or currently-violated nogood.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "csp/nogood_store.h"
#include "recovery/journal.h"
#include "recovery/retransmit.h"

namespace discsp {
namespace {

using recovery::Checkpoint;
using recovery::JournalConfig;
using recovery::JournalRecord;
using recovery::RecordType;
using recovery::RetransmitBuffer;
using recovery::RetransmitConfig;
using recovery::WriteAheadLog;

TEST(WriteAheadLog, AppendAndCheckpointAccounting) {
  JournalConfig config;
  config.checkpoint_interval = 3;
  WriteAheadLog wal(config);
  EXPECT_EQ(wal.appends(), 0u);
  EXPECT_FALSE(wal.should_checkpoint());

  wal.append({RecordType::kValue, 2, 0, Nogood{}});
  wal.append({RecordType::kPriority, 1, 0, Nogood{}});
  EXPECT_FALSE(wal.should_checkpoint());
  wal.append({RecordType::kNogood, 0, 0, Nogood{{0, 1}, {1, 2}}});
  EXPECT_TRUE(wal.should_checkpoint());
  EXPECT_EQ(wal.appends(), 3u);
  EXPECT_EQ(wal.records().size(), 3u);

  Checkpoint cp;
  cp.has_value = true;
  cp.value = 2;
  cp.priority = 1;
  cp.learned.push_back(Nogood{{0, 1}, {1, 2}});
  wal.write_checkpoint(cp);
  // The record tail is folded into the checkpoint and truncated.
  EXPECT_EQ(wal.records().size(), 0u);
  EXPECT_FALSE(wal.should_checkpoint());
  EXPECT_EQ(wal.checkpoints(), 1u);
  EXPECT_TRUE(wal.checkpoint().has_value);
  EXPECT_EQ(wal.checkpoint().value, 2);
  ASSERT_EQ(wal.checkpoint().learned.size(), 1u);
  EXPECT_EQ(wal.checkpoint().learned[0], (Nogood{{0, 1}, {1, 2}}));
}

TEST(WriteAheadLog, SequenceBlocksAreReservedNotLogged) {
  JournalConfig config;
  config.seq_reserve = 10;
  WriteAheadLog wal(config);
  EXPECT_EQ(wal.seq_limit(), 0u);

  // First use reserves a whole block with a single record.
  wal.ensure_seq(1);
  EXPECT_EQ(wal.seq_limit(), 10u);
  EXPECT_EQ(wal.appends(), 1u);
  ASSERT_EQ(wal.records().size(), 1u);
  EXPECT_EQ(wal.records()[0].type, RecordType::kSeqReserve);
  EXPECT_EQ(wal.records()[0].a, 10);

  // Every sequence inside the block is covered for free.
  for (std::uint64_t seq = 2; seq <= 10; ++seq) wal.ensure_seq(seq);
  EXPECT_EQ(wal.appends(), 1u);

  // Crossing the limit reserves the next block from the requested seq.
  wal.ensure_seq(11);
  EXPECT_EQ(wal.seq_limit(), 20u);
  EXPECT_EQ(wal.appends(), 2u);
}

TEST(WriteAheadLog, SequenceLimitSurvivesCheckpointTruncation) {
  // A recovering agent resumes from seq_limit(); truncating the log (which
  // discards the kSeqReserve records) must not regress it.
  WriteAheadLog wal(JournalConfig{.checkpoint_interval = 1, .seq_reserve = 8});
  wal.ensure_seq(1);
  EXPECT_EQ(wal.seq_limit(), 8u);
  wal.write_checkpoint(Checkpoint{});
  EXPECT_EQ(wal.records().size(), 0u);
  EXPECT_EQ(wal.seq_limit(), 8u);
}

TEST(WriteAheadLog, ConfigValidation) {
  JournalConfig config;
  EXPECT_NO_THROW(config.validate());
  config.seq_reserve = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = {};
  config.checkpoint_interval = -1;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = {};
  config.checkpoint_interval = 0;  // "never checkpoint" is legal
  EXPECT_NO_THROW(config.validate());
}

TEST(RetransmitBackoff, ScheduleIsDeterministicInTheSeed) {
  RetransmitConfig config;
  config.ack_timeout = 100;
  config.backoff = 2.0;
  Rng a(42), b(42), c(43);
  std::vector<std::int64_t> sched_a, sched_b, sched_c;
  for (int attempt = 0; attempt < 6; ++attempt) {
    sched_a.push_back(config.timeout_for(attempt, a));
    sched_b.push_back(config.timeout_for(attempt, b));
    sched_c.push_back(config.timeout_for(attempt, c));
  }
  EXPECT_EQ(sched_a, sched_b) << "same jitter seed must give the same schedule";
  EXPECT_NE(sched_a, sched_c) << "jitter streams with different seeds collide";
}

TEST(RetransmitBackoff, GrowsExponentiallyUpToTheCap) {
  RetransmitConfig config;
  config.ack_timeout = 100;
  config.backoff = 2.0;
  config.max_timeout = 400;
  Rng jitter(7);
  for (int attempt = 0; attempt < 10; ++attempt) {
    const std::int64_t t = config.timeout_for(attempt, jitter);
    // base * 2^attempt, capped at 400, plus jitter in [0, t/4].
    const std::int64_t base = std::min<std::int64_t>(
        400, static_cast<std::int64_t>(100.0 * std::pow(2.0, attempt)));
    EXPECT_GE(t, base) << "attempt " << attempt;
    EXPECT_LE(t, base + base / 4 + 1) << "attempt " << attempt;
  }
}

TEST(RetransmitBackoff, ConfigValidation) {
  RetransmitConfig config;
  EXPECT_FALSE(config.enabled());  // ack_timeout = 0 is the off switch
  EXPECT_NO_THROW(config.validate());
  config.ack_timeout = 50;
  EXPECT_TRUE(config.enabled());
  EXPECT_NO_THROW(config.validate());
  config.backoff = 0.5;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = {};
  config.ack_timeout = -1;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = {};
  config.max_attempts = -2;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

RetransmitConfig buffer_config() {
  RetransmitConfig config;
  config.ack_timeout = 100;
  config.backoff = 2.0;
  config.max_attempts = 3;
  config.seed = 99;
  return config;
}

TEST(RetransmitBuffer, AckedSendsAreNeverRetransmitted) {
  RetransmitBuffer buffer(buffer_config(), 3);
  const std::uint64_t seq = buffer.track(0, 1, sim::MessagePayload{}, 0);
  EXPECT_EQ(seq, 1u);
  EXPECT_TRUE(buffer.next_deadline().has_value());
  buffer.ack(0, 1, seq);
  EXPECT_FALSE(buffer.next_deadline().has_value());
  EXPECT_TRUE(buffer.collect_due(1'000'000).empty());
  EXPECT_EQ(buffer.retransmissions(), 0u);
}

TEST(RetransmitBuffer, UnackedSendIsRetransmittedWithBackoff) {
  RetransmitBuffer buffer(buffer_config(), 2);
  buffer.track(0, 1, sim::MessagePayload{}, 0);

  const auto first_deadline = buffer.next_deadline();
  ASSERT_TRUE(first_deadline.has_value());
  auto due = buffer.collect_due(*first_deadline);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].from, 0);
  EXPECT_EQ(due[0].to, 1);
  EXPECT_EQ(due[0].seq, 1u);
  EXPECT_EQ(due[0].attempt, 1);
  EXPECT_FALSE(due[0].false_positive);

  // The next deadline backed off (strictly later than a base-timeout step).
  const auto second_deadline = buffer.next_deadline();
  ASSERT_TRUE(second_deadline.has_value());
  EXPECT_GT(*second_deadline, *first_deadline + 100);
  EXPECT_EQ(buffer.retransmissions(), 1u);
}

TEST(RetransmitBuffer, GivesUpAfterMaxAttempts) {
  RetransmitBuffer buffer(buffer_config(), 2);  // max_attempts = 3
  buffer.track(0, 1, sim::MessagePayload{}, 0);
  int fired = 0;
  for (int round = 0; round < 10; ++round) {
    const auto deadline = buffer.next_deadline();
    if (!deadline.has_value()) break;
    fired += static_cast<int>(buffer.collect_due(*deadline).size());
  }
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(buffer.gave_up(), 1u);
  EXPECT_FALSE(buffer.next_deadline().has_value())
      << "a given-up send must leave the pending buffer";
}

TEST(RetransmitBuffer, DuplicateDeliveriesAreReported) {
  RetransmitBuffer buffer(buffer_config(), 2);
  const std::uint64_t seq = buffer.track(0, 1, sim::MessagePayload{}, 0);
  EXPECT_FALSE(buffer.mark_delivered(0, 1, seq));
  EXPECT_TRUE(buffer.mark_delivered(0, 1, seq)) << "second copy is a duplicate";
}

TEST(RetransmitBuffer, LostAckCountsAsFalsePositive) {
  RetransmitBuffer buffer(buffer_config(), 2);
  const std::uint64_t seq = buffer.track(0, 1, sim::MessagePayload{}, 0);
  // Delivered, but the ack never made it back: the sender still suspects.
  buffer.mark_delivered(0, 1, seq);
  const auto deadline = buffer.next_deadline();
  ASSERT_TRUE(deadline.has_value());
  const auto due = buffer.collect_due(*deadline);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_TRUE(due[0].false_positive);
  EXPECT_EQ(buffer.false_positives(), 1u);
}

TEST(RetransmitBuffer, ForgetAgentDropsPendingAndDedupState) {
  RetransmitBuffer buffer(buffer_config(), 3);
  const std::uint64_t out = buffer.track(1, 2, sim::MessagePayload{}, 0);
  const std::uint64_t in = buffer.track(0, 1, sim::MessagePayload{}, 0);
  buffer.mark_delivered(0, 1, in);

  buffer.forget_agent(1);
  // Sender-side pending of agent 1 is gone...
  EXPECT_EQ(buffer.collect_due(1'000'000).size(), 1u)
      << "only the (0,1) send — whose *sender* still remembers it — retries";
  // ...and its receiver-side dedup set is too: the old copy is fresh again.
  EXPECT_FALSE(buffer.mark_delivered(0, 1, in));
  (void)out;

  // Channel sequence counters are transport state and keep increasing.
  EXPECT_EQ(buffer.track(1, 2, sim::MessagePayload{}, 0), out + 1);
}

TEST(BoundedNogoodStore, CapacityBoundAlwaysHolds) {
  NogoodStore store(0, 4);
  ASSERT_TRUE(store.add(Nogood{{0, 0}}));  // problem constraint
  store.mark_initial();
  store.set_capacity(2);

  for (Value v = 1; v <= 3; ++v) {
    EXPECT_TRUE(store.add(Nogood{{0, v}, {1, v}}));
    EXPECT_LE(store.learned_count(), 2u);
  }
  EXPECT_EQ(store.learned_count(), 2u);
  EXPECT_EQ(store.initial_count(), 1u);
  EXPECT_EQ(store.evictions(), 1u);
  EXPECT_EQ(store.peak_learned(), 2u);
  ASSERT_TRUE(store.last_eviction().has_value());
  // Initial nogoods are exempt from the bound and never evicted.
  EXPECT_TRUE(store.contains(Nogood{{0, 0}}));
}

TEST(BoundedNogoodStore, EvictsTheLeastRecentlyViolated) {
  NogoodStore store(0, 4);
  store.set_capacity(2);
  ASSERT_TRUE(store.add(Nogood{{0, 1}, {1, 1}}));
  ASSERT_TRUE(store.add(Nogood{{0, 2}, {1, 2}}));

  // Touch the first one: the second becomes the LRU victim.
  for (std::size_t i = 0; i < store.size(); ++i) {
    if (store.at(i) == (Nogood{{0, 1}, {1, 1}})) store.note_violation(i);
  }
  ASSERT_TRUE(store.add(Nogood{{0, 3}, {1, 3}}));
  EXPECT_TRUE(store.contains(Nogood{{0, 1}, {1, 1}}));
  EXPECT_FALSE(store.contains(Nogood{{0, 2}, {1, 2}}));
  ASSERT_TRUE(store.last_eviction().has_value());
  EXPECT_EQ(*store.last_eviction(), (Nogood{{0, 2}, {1, 2}}));
}

TEST(BoundedNogoodStore, NeverEvictsACurrentlyViolatedNogood) {
  NogoodStore store(0, 4);
  store.set_capacity(2);
  ASSERT_TRUE(store.add(Nogood{{0, 1}, {1, 1}}));
  ASSERT_TRUE(store.add(Nogood{{0, 2}, {1, 2}}));

  // The mirrored view says the stale-looking first nogood is violated right
  // now: evicting it could re-admit the conflict the agent is resolving.
  store.set_own_value(1);
  store.set_view(1, 1);
  ASSERT_TRUE(store.add(Nogood{{0, 3}, {1, 3}}));
  EXPECT_TRUE(store.contains(Nogood{{0, 1}, {1, 1}}));
  EXPECT_FALSE(store.contains(Nogood{{0, 2}, {1, 2}}));
}

TEST(BoundedNogoodStore, NeverEvictsUnitNogoods) {
  NogoodStore store(0, 4);
  store.set_capacity(2);
  // Unit nogoods prune a whole domain value unconditionally — losing one
  // can cost completeness outright, so they are never victims.
  ASSERT_TRUE(store.add(Nogood{{0, 1}}));
  ASSERT_TRUE(store.add(Nogood{{0, 2}}));
  // Store full of unit nogoods: the add is rejected, the bound still holds.
  EXPECT_FALSE(store.add(Nogood{{0, 3}, {1, 3}}));
  EXPECT_EQ(store.learned_count(), 2u);
  EXPECT_TRUE(store.contains(Nogood{{0, 1}}));
  EXPECT_TRUE(store.contains(Nogood{{0, 2}}));
  EXPECT_EQ(store.evictions(), 0u);
}

TEST(BoundedNogoodStore, RejectsWhenEverythingIsViolated) {
  NogoodStore store(0, 4);
  store.set_capacity(1);
  ASSERT_TRUE(store.add(Nogood{{0, 1}, {1, 1}}));
  // Make the only resident learned nogood currently violated: no victim.
  store.set_own_value(1);
  store.set_view(1, 1);
  EXPECT_FALSE(store.add(Nogood{{0, 2}, {1, 2}}));
  EXPECT_EQ(store.learned_count(), 1u);
}

TEST(BoundedNogoodStore, RemoveByContentSupportsReplay) {
  NogoodStore store(0, 4);
  ASSERT_TRUE(store.add(Nogood{{0, 1}, {1, 1}}));
  ASSERT_TRUE(store.add(Nogood{{0, 2}, {1, 2}}));
  EXPECT_TRUE(store.remove(Nogood{{0, 1}, {1, 1}}));
  EXPECT_FALSE(store.remove(Nogood{{0, 1}, {1, 1}}));  // already gone
  EXPECT_FALSE(store.contains(Nogood{{0, 1}, {1, 1}}));
  EXPECT_TRUE(store.contains(Nogood{{0, 2}, {1, 2}}));
  // Journal-replay removals are not evictions.
  EXPECT_EQ(store.evictions(), 0u);
}

}  // namespace
}  // namespace discsp
