// Multi-variable-per-agent AWC (virtual-agent reduction).
#include <gtest/gtest.h>

#include "csp/validate.h"
#include "gen/coloring_gen.h"
#include "learning/resolvent.h"
#include "multi/multi_awc.h"

namespace discsp::multi {
namespace {

gen::ColoringInstance coloring(int n, std::uint64_t seed) {
  Rng rng(seed);
  return gen::generate_coloring3(n, rng);
}

TEST(MultiAwc, SolvesWithSeveralVariablesPerAgent) {
  const auto inst = coloring(24, 1);
  for (int agents : {24, 8, 4, 2, 1}) {
    const auto dp = partition_round_robin(inst.problem, agents);
    MultiAwcSolver solver(dp, learning::ResolventLearning{});
    Rng rng(7);
    const auto result = solver.solve(solver.random_initial(rng), rng.derive(1));
    ASSERT_TRUE(result.metrics.solved) << agents << " agents";
    EXPECT_TRUE(validate_solution(inst.problem, result.assignment).ok)
        << agents << " agents";
  }
}

TEST(MultiAwc, BlockPartitionAlsoWorks) {
  const auto inst = coloring(18, 2);
  const auto dp = partition_blocks(inst.problem, 3);
  EXPECT_EQ(dp.num_agents(), 3);
  EXPECT_EQ(dp.variables_of(0).size(), 6u);
  MultiAwcSolver solver(dp, learning::ResolventLearning{});
  Rng rng(9);
  const auto result = solver.solve(solver.random_initial(rng), rng.derive(1));
  ASSERT_TRUE(result.metrics.solved);
  EXPECT_TRUE(validate_solution(inst.problem, result.assignment).ok);
}

TEST(MultiAwc, ExternalMessagesShrinkWithFewerAgents) {
  // Same problem, same virtual protocol: co-locating variables can only
  // remove external messages.
  const auto inst = coloring(24, 3);
  auto run = [&](int agents) {
    const auto dp = partition_round_robin(inst.problem, agents);
    MultiAwcSolver solver(dp, learning::ResolventLearning{});
    Rng rng(11);
    return solver.solve(solver.random_initial(rng), rng.derive(1));
  };
  const auto fine = run(24);
  const auto coarse = run(1);
  ASSERT_TRUE(fine.metrics.solved);
  ASSERT_TRUE(coarse.metrics.solved);
  EXPECT_EQ(coarse.metrics.messages, 0u)
      << "a single real agent has nobody external to talk to";
  EXPECT_GT(fine.metrics.messages, 0u);
}

TEST(MultiAwc, OneVarPerAgentMatchesMetricsShape) {
  const auto inst = coloring(15, 4);
  const auto dp = partition_round_robin(inst.problem, 15);
  MultiAwcSolver solver(dp, learning::ResolventLearning{});
  Rng rng(13);
  const auto result = solver.solve(solver.random_initial(rng), rng.derive(1));
  ASSERT_TRUE(result.metrics.solved);
  EXPECT_LE(result.metrics.maxcck, result.metrics.total_checks);
}

TEST(MultiAwc, DetectsInsolubility) {
  // K4 with 3 colors split over 2 agents.
  Problem p;
  p.add_variables(4, 3);
  for (VarId u = 0; u < 4; ++u) {
    for (VarId v = static_cast<VarId>(u + 1); v < 4; ++v) {
      for (Value c = 0; c < 3; ++c) p.add_nogood(Nogood{{u, c}, {v, c}});
    }
  }
  const auto dp = partition_round_robin(std::move(p), 2);
  MultiAwcSolver solver(dp, learning::ResolventLearning{});
  Rng rng(15);
  const auto result = solver.solve(solver.random_initial(rng), rng.derive(1));
  EXPECT_FALSE(result.metrics.solved);
  EXPECT_TRUE(result.metrics.insoluble);
}

TEST(MultiAwc, PartitionValidation) {
  Problem p;
  p.add_variables(4, 2);
  EXPECT_THROW(partition_round_robin(std::move(p), 0), std::invalid_argument);
  Problem q;
  q.add_variables(4, 2);
  EXPECT_THROW(partition_blocks(std::move(q), -1), std::invalid_argument);
}

TEST(MultiAwc, SingleAgentMaxcckEqualsTotalChecks) {
  // With one real agent, the per-cycle max over real agents is the sum over
  // all virtual agents, so maxcck must equal total_checks exactly.
  const auto inst = coloring(15, 6);
  const auto dp = partition_round_robin(inst.problem, 1);
  MultiAwcSolver solver(dp, learning::ResolventLearning{});
  Rng rng(19);
  const auto result = solver.solve(solver.random_initial(rng), rng.derive(1));
  ASSERT_TRUE(result.metrics.solved);
  EXPECT_EQ(result.metrics.maxcck, result.metrics.total_checks);
}

TEST(MultiAwc, CyclesInvariantUnderPartitioning) {
  // The virtual protocol is identical regardless of the partition, so with
  // the same seeds the cycle count must be partition-independent (only the
  // accounting changes).
  const auto inst = coloring(21, 7);
  std::vector<int> cycles;
  for (int agents : {21, 7, 3}) {
    const auto dp = partition_round_robin(inst.problem, agents);
    MultiAwcSolver solver(dp, learning::ResolventLearning{});
    Rng rng(23);
    const auto result = solver.solve(solver.random_initial(rng), rng.derive(1));
    ASSERT_TRUE(result.metrics.solved);
    cycles.push_back(result.metrics.cycles);
  }
  EXPECT_EQ(cycles[0], cycles[1]);
  EXPECT_EQ(cycles[1], cycles[2]);
}

TEST(MultiAwc, DeterministicUnderFixedSeed) {
  const auto inst = coloring(20, 5);
  const auto dp = partition_round_robin(inst.problem, 5);
  MultiAwcSolver solver(dp, learning::ResolventLearning{});
  auto run = [&]() {
    Rng rng(21);
    return solver.solve(solver.random_initial(rng), rng.derive(1));
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.metrics.cycles, b.metrics.cycles);
  EXPECT_EQ(a.assignment, b.assignment);
}

}  // namespace
}  // namespace discsp::multi
