// Determinism, range, and stream-independence properties of the Rng.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/rng.h"

namespace discsp {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() != b.next()) ++differing;
  }
  EXPECT_GT(differing, 60);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BetweenIsInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.between(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u) << "all five values should appear in 500 draws";
}

TEST(Rng, Uniform01Range) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceRoughlyCalibrated) {
  Rng rng(17);
  int hits = 0;
  const int trials = 10000;
  for (int i = 0; i < trials; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / static_cast<double>(trials), 0.3, 0.03);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(23);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[static_cast<std::size_t>(i)] = i;
  auto orig = v;
  rng.shuffle(v);
  EXPECT_NE(v, orig) << "a 50-element shuffle staying identical is ~impossible";
}

TEST(Rng, DerivedStreamsAreIndependentAndReproducible) {
  Rng root(31);
  Rng a1 = root.derive(1);
  Rng a2 = root.derive(2);
  EXPECT_NE(a1.next(), a2.next()) << "sibling streams should differ";

  // Deriving again from an equally-seeded root reproduces the same child.
  Rng root2(31);
  Rng b1 = root2.derive(1);
  Rng a1b(31);
  a1b = Rng(31).derive(1);
  EXPECT_EQ(b1.next(), a1b.next());
}

TEST(Rng, DeriveUnaffectedByParentDraws) {
  Rng root(37);
  root.next();
  root.next();
  Rng child_after = root.derive(5);
  Rng child_fresh = Rng(37).derive(5);
  EXPECT_EQ(child_after.next(), child_fresh.next())
      << "derive() keys off the origin seed, not the evolving state";
}

TEST(Rng, Splitmix64KnownValues) {
  // Reference values from the splitmix64 reference implementation.
  std::uint64_t state = 0;
  const std::uint64_t first = splitmix64(state);
  EXPECT_EQ(first, 0xe220a8397b1dcdafULL);
}

}  // namespace
}  // namespace discsp
