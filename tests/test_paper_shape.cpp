// Miniature end-to-end reproduction checks: the paper's *qualitative*
// findings must already be visible on small instances with a handful of
// trials. These tests are the repository's canary — if a refactor breaks
// the learning machinery or the metrics, the orderings flip and they fail.
#include <gtest/gtest.h>

#include "analysis/efficiency.h"
#include "analysis/experiment.h"

namespace discsp::analysis {
namespace {

ExperimentSpec small_spec(ProblemFamily family, int n, int instances = 4,
                          int inits = 3) {
  ExperimentSpec spec;
  spec.family = family;
  spec.n = n;
  spec.instances = instances;
  spec.inits_per_instance = inits;
  spec.seed = 1234;
  spec.max_cycles = 10000;
  return spec;
}

TEST(PaperShape, LearningSlashesCyclesOnColoring) {
  const auto spec = small_spec(ProblemFamily::kColoring3, 40);
  const std::vector<NamedRunner> runners = {
      {"Rslv", awc_runner("Rslv")},
      {"No", awc_runner("No")},
  };
  const auto rows = run_comparison(spec, runners);
  EXPECT_DOUBLE_EQ(rows[0].solved_percent, 100.0);
  // Table 1's headline: nogood learning dramatically reduces cycles.
  EXPECT_LT(rows[0].mean_cycles * 1.5, rows[1].mean_cycles)
      << "Rslv=" << rows[0].mean_cycles << " No=" << rows[1].mean_cycles;
}

TEST(PaperShape, ResolventBeatsMcsOnChecksOnColoring) {
  // The check-cost gap needs instances big enough for real deadend chains;
  // at tiny n the two methods are indistinguishable.
  const auto spec = small_spec(ProblemFamily::kColoring3, 60, 3, 2);
  const std::vector<NamedRunner> runners = {
      {"Rslv", awc_runner("Rslv")},
      {"Mcs", awc_runner("Mcs")},
  };
  const auto rows = run_comparison(spec, runners);
  EXPECT_DOUBLE_EQ(rows[0].solved_percent, 100.0);
  EXPECT_DOUBLE_EQ(rows[1].solved_percent, 100.0);
  // Table 1's second finding: competitive cycles, cheaper checks for Rslv.
  EXPECT_LT(rows[0].mean_maxcck, rows[1].mean_maxcck);
  EXPECT_LT(rows[0].mean_cycles, rows[1].mean_cycles * 3.0);
  EXPECT_LT(rows[1].mean_cycles, rows[0].mean_cycles * 3.0);
}

TEST(PaperShape, RecordingCollapsesRedundantGenerations) {
  const auto spec = small_spec(ProblemFamily::kColoring3, 60, 3, 2);
  const std::vector<NamedRunner> runners = {
      {"rec", awc_runner("Rslv", /*record_received=*/true)},
      {"norec", awc_runner("Rslv", /*record_received=*/false)},
  };
  const auto rows = run_comparison(spec, runners);
  // Table 4: without recording, the same nogoods are rediscovered over and
  // over.
  EXPECT_LT(rows[0].mean_redundant_generations * 2.0,
            rows[1].mean_redundant_generations)
      << "rec=" << rows[0].mean_redundant_generations
      << " norec=" << rows[1].mean_redundant_generations;
}

TEST(PaperShape, AwcBeatsDbOnCyclesAndLosesOnChecks) {
  const auto spec = small_spec(ProblemFamily::kColoring3, 45);
  const std::vector<NamedRunner> runners = {
      {"AWC+3rdRslv", awc_runner("3rdRslv")},
      {"DB", db_runner()},
  };
  const auto rows = run_comparison(spec, runners);
  ASSERT_DOUBLE_EQ(rows[0].solved_percent, 100.0);
  ASSERT_DOUBLE_EQ(rows[1].solved_percent, 100.0);
  // Tables 8-10: AWC wins communication, DB wins computation.
  EXPECT_LT(rows[0].mean_cycles, rows[1].mean_cycles);
  EXPECT_GT(rows[0].mean_maxcck, rows[1].mean_maxcck);
  // Which implies a positive Figure-2 crossover delay.
  const double crossover = crossover_delay({rows[0].mean_cycles, rows[0].mean_maxcck},
                                           {rows[1].mean_cycles, rows[1].mean_maxcck});
  EXPECT_GT(crossover, 0.0);
}

TEST(PaperShape, SizeBoundCutsChecksOnColoring) {
  const auto spec = small_spec(ProblemFamily::kColoring3, 45);
  const std::vector<NamedRunner> runners = {
      {"Rslv", awc_runner("Rslv")},
      {"3rdRslv", awc_runner("3rdRslv")},
  };
  const auto rows = run_comparison(spec, runners);
  ASSERT_DOUBLE_EQ(rows[1].solved_percent, 100.0);
  // Table 5: the bound reduces maxcck without wrecking cycles.
  EXPECT_LT(rows[1].mean_maxcck, rows[0].mean_maxcck);
  EXPECT_LT(rows[1].mean_cycles, rows[0].mean_cycles * 2.5);
}

TEST(PaperShape, UniqueSolutionInstancesCrushNoLearning) {
  const auto spec = small_spec(ProblemFamily::kOneSat3, 50, 2, 3);
  const std::vector<NamedRunner> runners = {
      {"Rslv", awc_runner("Rslv")},
      {"No", awc_runner("No")},
  };
  const auto rows = run_comparison(spec, runners);
  // Table 3: learning keeps solving; no-learning degrades hard on
  // single-solution instances (the paper reaches 0% at n=200).
  EXPECT_DOUBLE_EQ(rows[0].solved_percent, 100.0);
  EXPECT_GT(rows[1].mean_cycles, rows[0].mean_cycles * 2.0);
}

}  // namespace
}  // namespace discsp::analysis
