// Figure-2 efficiency model, including the paper's quoted crossovers
// recomputed from its published table values.
#include <gtest/gtest.h>

#include "analysis/efficiency.h"

namespace discsp::analysis {
namespace {

TEST(Efficiency, TotalTimeIsAffine) {
  const AlgorithmCost cost{100.0, 5000.0};
  EXPECT_DOUBLE_EQ(total_time(cost, 0.0), 5000.0);
  EXPECT_DOUBLE_EQ(total_time(cost, 10.0), 6000.0);
}

TEST(Efficiency, CrossoverMatchesPaperTable10N50) {
  // Table 10, n = 50: AWC+4thRslv (130.8, 38892.5) vs DB (690.1, 11691.1).
  // The paper reads "around 50 time-units" off Figure 2.
  const AlgorithmCost awc{130.8, 38892.5};
  const AlgorithmCost db{690.1, 11691.1};
  const double delay = crossover_delay(awc, db);
  EXPECT_NEAR(delay, 48.6, 0.5);
  // Before the crossover DB is cheaper; after it AWC wins.
  EXPECT_GT(total_time(awc, 10.0), total_time(db, 10.0));
  EXPECT_LT(total_time(awc, 100.0), total_time(db, 100.0));
}

TEST(Efficiency, CrossoverMatchesPaperTable9N150) {
  // Table 9, n = 150: paper quotes "around 210 time-units".
  const AlgorithmCost awc{255.5, 246534.5};
  const AlgorithmCost db{1257.2, 31717.2};
  EXPECT_NEAR(crossover_delay(awc, db), 214.5, 1.0);
}

TEST(Efficiency, CrossoverMatchesPaperTable8N150) {
  // Table 8, n = 150: paper quotes "around 370 time-units".
  const AlgorithmCost awc{186.1, 153139.2};
  const AlgorithmCost db{523.7, 29207.0};
  EXPECT_NEAR(crossover_delay(awc, db), 367.1, 1.0);
}

TEST(Efficiency, NoCrossoverWhenOneDominates) {
  const AlgorithmCost cheap{10.0, 100.0};
  const AlgorithmCost dear{20.0, 200.0};
  EXPECT_LT(crossover_delay(cheap, dear), 0.0);
  EXPECT_LT(crossover_delay(dear, cheap), 0.0);
}

TEST(Efficiency, ParallelLinesHaveNoCrossover) {
  const AlgorithmCost a{10.0, 100.0};
  const AlgorithmCost b{10.0, 200.0};
  EXPECT_LT(crossover_delay(a, b), 0.0);
}

TEST(Efficiency, SeriesCoversRangeInclusively) {
  const AlgorithmCost a{2.0, 10.0};
  const AlgorithmCost b{1.0, 20.0};
  const auto series = efficiency_series(a, b, 100.0, 5);
  ASSERT_EQ(series.size(), 5u);
  EXPECT_DOUBLE_EQ(series.front().delay, 0.0);
  EXPECT_DOUBLE_EQ(series.back().delay, 100.0);
  EXPECT_DOUBLE_EQ(series[2].total_a, 10.0 + 2.0 * 50.0);
  EXPECT_DOUBLE_EQ(series[2].total_b, 20.0 + 1.0 * 50.0);
}

TEST(Efficiency, SeriesValidatesArguments) {
  const AlgorithmCost a{1.0, 1.0};
  EXPECT_THROW(efficiency_series(a, a, 10.0, 1), std::invalid_argument);
  EXPECT_THROW(efficiency_series(a, a, -1.0, 5), std::invalid_argument);
}

}  // namespace
}  // namespace discsp::analysis
