// Incremental consistency engine: the counter-based violation queries of
// NogoodStore must agree with a brute-force scan over the stored nogoods
// under arbitrary interleavings of adds, removes (the journal-replay path),
// view updates, capacity evictions and crash-style view clears — and the
// agents built on the counters must report the exact same paper metrics as
// the flat-scan path they replaced.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "analysis/experiment.h"
#include "common/rng.h"
#include "csp/nogood_store.h"

namespace discsp {
namespace {

// Brute-force reference: indices of the nogoods violated under the store's
// mirrored view with x_own = d, by re-evaluating every stored nogood.
std::vector<std::uint32_t> brute_violated(const NogoodStore& store, Value d) {
  std::vector<std::uint32_t> out;
  const auto lookup = [&](VarId v) {
    return v == store.own() ? d : store.view_value(v);
  };
  for (std::size_t i = 0; i < store.size(); ++i) {
    if (store.at(i).violated_by(lookup)) out.push_back(static_cast<std::uint32_t>(i));
  }
  return out;
}

void expect_counters_match(const NogoodStore& store, int domain_size) {
  for (Value d = 0; d < domain_size; ++d) {
    const auto expected = brute_violated(store, d);
    std::vector<std::uint32_t> got;
    store.violated_with_own(d, got);
    ASSERT_EQ(got, expected) << "own value " << d;
    ASSERT_EQ(store.violated_count(d), expected.size()) << "own value " << d;
  }
  // The per-nogood predicates must agree with the same reference.
  for (std::size_t i = 0; i < store.size(); ++i) {
    const auto lookup = [&](VarId v) {
      return v == store.own() ? store.own_binding(i) : store.view_value(v);
    };
    ASSERT_EQ(store.matched_except_own(i), store.at(i).violated_by(lookup)) << i;
    if (store.own_value() != kNoValue) {
      const auto own_lookup = [&](VarId v) {
        return v == store.own() ? store.own_value() : store.view_value(v);
      };
      ASSERT_EQ(store.currently_violated(i), store.at(i).violated_by(own_lookup)) << i;
    }
  }
}

Nogood random_nogood(Rng& rng, VarId own, int num_vars, int domain_size) {
  std::vector<Assignment> items;
  items.push_back({own, static_cast<Value>(rng.index(static_cast<std::size_t>(domain_size)))});
  for (VarId v = 0; v < num_vars; ++v) {
    if (v == own || rng.index(3) != 0) continue;
    items.push_back({v, static_cast<Value>(rng.index(static_cast<std::size_t>(domain_size)))});
  }
  return Nogood(std::move(items));
}

TEST(IncrementalView, CountersMatchBruteForceUnderRandomChurn) {
  constexpr VarId kOwn = 2;
  constexpr int kVars = 6;
  constexpr int kDomain = 3;
  Rng rng(0xfeedULL);
  NogoodStore store(kOwn, kDomain);
  store.set_own_value(0);

  for (int step = 0; step < 2000; ++step) {
    switch (rng.index(12)) {
      case 0:
      case 1:
      case 2:
      case 3: {  // add (duplicates exercised on purpose)
        store.add(random_nogood(rng, kOwn, kVars, kDomain));
        break;
      }
      case 4:
      case 5:
      case 6: {  // view update, including "unknown"
        VarId v;
        do {
          v = static_cast<VarId>(rng.index(kVars));
        } while (v == kOwn);
        const Value val = rng.index(4) == 0
                              ? kNoValue
                              : static_cast<Value>(rng.index(kDomain));
        store.set_view(v, val);
        break;
      }
      case 7: {  // own move
        store.set_own_value(static_cast<Value>(rng.index(kDomain)));
        break;
      }
      case 8: {  // journal-replay removal by content
        if (store.size() > 0) {
          store.remove(store.at(rng.index(store.size())));
        }
        break;
      }
      case 9: {  // recency signal feeding the LRU eviction
        if (store.size() > 0) {
          store.note_violation(rng.index(store.size()));
        }
        break;
      }
      case 10: {  // tighten/loosen the learned bound (forces evictions)
        store.set_capacity(rng.index(2) == 0 ? 0 : 3 + rng.index(5));
        break;
      }
      case 11: {  // crash: the agent forgets its view
        store.clear_view();
        break;
      }
    }
    expect_counters_match(store, kDomain);
  }
  EXPECT_GT(store.size(), 0u);
}

TEST(IncrementalView, SurvivesReplayStyleRebuild) {
  // The amnesia-recovery path: rebuild a fresh store, replay add/remove
  // records, then re-learn the view. Counters must match brute force at
  // every stage.
  constexpr VarId kOwn = 0;
  constexpr int kDomain = 3;
  Rng rng(0xabcULL);
  std::vector<Nogood> journal;
  for (int i = 0; i < 40; ++i) journal.push_back(random_nogood(rng, kOwn, 5, kDomain));

  NogoodStore store(kOwn, kDomain);
  for (const Nogood& ng : journal) store.add(ng);
  for (std::size_t i = 0; i < journal.size(); i += 3) store.remove(journal[i]);
  expect_counters_match(store, kDomain);

  store.set_own_value(1);
  for (VarId v = 1; v <= 4; ++v) {
    store.set_view(v, static_cast<Value>(rng.index(kDomain)));
  }
  expect_counters_match(store, kDomain);

  store.clear_view();
  expect_counters_match(store, kDomain);
  store.set_view(2, 1);
  expect_counters_match(store, kDomain);
}

// The incremental path is an optimization, not a semantic change: every
// paper metric an experiment reports must be bit-identical to the flat-scan
// path. Only mean_work_ops — the machine-cost counter — may differ.
void expect_rows_identical_except_work(const analysis::AggregateRow& a,
                                       const analysis::AggregateRow& b) {
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_EQ(a.mean_cycles, b.mean_cycles);
  EXPECT_EQ(a.mean_maxcck, b.mean_maxcck);
  EXPECT_EQ(a.solved_percent, b.solved_percent);
  EXPECT_EQ(a.mean_nogoods_generated, b.mean_nogoods_generated);
  EXPECT_EQ(a.mean_redundant_generations, b.mean_redundant_generations);
  EXPECT_EQ(a.median_cycles, b.median_cycles);
  EXPECT_EQ(a.p95_cycles, b.p95_cycles);
  EXPECT_EQ(a.max_cycles, b.max_cycles);
  EXPECT_EQ(a.median_maxcck, b.median_maxcck);
  EXPECT_EQ(a.mean_total_checks, b.mean_total_checks);
}

analysis::ExperimentSpec small_spec(analysis::ProblemFamily family, int n) {
  analysis::ExperimentSpec spec;
  spec.family = family;
  spec.n = n;
  spec.instances = 2;
  spec.inits_per_instance = 3;
  spec.seed = 20000704;
  spec.max_cycles = 2000;
  return spec;
}

TEST(IncrementalView, AwcMetricsBitIdenticalToScanPath) {
  const auto spec = small_spec(analysis::ProblemFamily::kColoring3, 24);
  const std::vector<analysis::NamedRunner> incremental = {
      {"Rslv", analysis::awc_runner("Rslv", true, spec.max_cycles, true)}};
  const std::vector<analysis::NamedRunner> scan = {
      {"Rslv", analysis::awc_runner("Rslv", true, spec.max_cycles, false)}};
  const auto a = analysis::run_comparison(spec, incremental);
  const auto b = analysis::run_comparison(spec, scan);
  expect_rows_identical_except_work(a[0], b[0]);
  EXPECT_GT(a[0].mean_total_checks, 0.0);
}

TEST(IncrementalView, AbtMetricsBitIdenticalToScanPath) {
  const auto spec = small_spec(analysis::ProblemFamily::kColoring3, 16);
  for (bool use_resolvent : {false, true}) {
    const std::vector<analysis::NamedRunner> incremental = {
        {"ABT", analysis::abt_runner(use_resolvent, spec.max_cycles, true)}};
    const std::vector<analysis::NamedRunner> scan = {
        {"ABT", analysis::abt_runner(use_resolvent, spec.max_cycles, false)}};
    const auto a = analysis::run_comparison(spec, incremental);
    const auto b = analysis::run_comparison(spec, scan);
    expect_rows_identical_except_work(a[0], b[0]);
  }
}

TEST(IncrementalView, DbMetricsBitIdenticalToScanPath) {
  const auto spec = small_spec(analysis::ProblemFamily::kSat3, 20);
  const std::vector<analysis::NamedRunner> incremental = {
      {"DB", analysis::db_runner(spec.max_cycles, true)}};
  const std::vector<analysis::NamedRunner> scan = {
      {"DB", analysis::db_runner(spec.max_cycles, false)}};
  const auto a = analysis::run_comparison(spec, incremental);
  const auto b = analysis::run_comparison(spec, scan);
  expect_rows_identical_except_work(a[0], b[0]);
}

TEST(IncrementalView, CounterPathDoesFarLessWorkOn3Sat) {
  // 3SAT with resolvent learning: the scan path re-evaluates whole stores
  // per candidate value while the counters touch only the occurrences of
  // changed variables. End-to-end the ratio grows with n (~3.4x at this
  // CI-friendly n=30, ~5x at the paper's Table-2 sizes); the isolated
  // consistency-kernel ratio is asserted at >= 5x by the bench_micro_core
  // probe (tools/bench_check.py). Here we pin a conservative floor.
  const auto spec = small_spec(analysis::ProblemFamily::kSat3, 30);
  const std::vector<analysis::NamedRunner> incremental = {
      {"Rslv", analysis::awc_runner("Rslv", true, spec.max_cycles, true)}};
  const std::vector<analysis::NamedRunner> scan = {
      {"Rslv", analysis::awc_runner("Rslv", true, spec.max_cycles, false)}};
  const auto a = analysis::run_comparison(spec, incremental);
  const auto b = analysis::run_comparison(spec, scan);
  expect_rows_identical_except_work(a[0], b[0]);
  ASSERT_GT(a[0].mean_work_ops, 0.0);
  EXPECT_GE(b[0].mean_work_ops / a[0].mean_work_ops, 3.0)
      << "scan " << b[0].mean_work_ops << " vs incremental " << a[0].mean_work_ops;
}

}  // namespace
}  // namespace discsp
