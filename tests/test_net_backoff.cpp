// Reconnect/retransmit backoff schedule tests (net/supervisor.h,
// recovery/retransmit.h) — the ISSUE's satellite: the shared schedule's
// jitter stays within its documented bounds, and the whole delay sequence is
// bit-identical for a fixed seed.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "net/supervisor.h"
#include "recovery/retransmit.h"

namespace discsp {
namespace {

using net::ReconnectPolicy;
using recovery::RetransmitConfig;

std::int64_t capped_base(const RetransmitConfig& config, int attempt) {
  const std::int64_t cap =
      config.max_timeout > 0 ? config.max_timeout : config.ack_timeout * 64;
  double timeout = static_cast<double>(config.ack_timeout);
  for (int i = 0; i < attempt; ++i) timeout *= config.backoff;
  return std::min<std::int64_t>(static_cast<std::int64_t>(timeout), cap);
}

TEST(NetBackoff, JitterStaysWithinDocumentedBounds) {
  // timeout_for(attempt) = base * backoff^attempt (capped) + jitter with
  // jitter in [0, timeout/4] — check every attempt across many draws.
  RetransmitConfig config;
  config.ack_timeout = 40;
  config.backoff = 2.0;
  config.max_timeout = 1000;
  for (int attempt = 0; attempt < 10; ++attempt) {
    const std::int64_t base = capped_base(config, attempt);
    Rng jitter(123);
    for (int draw = 0; draw < 200; ++draw) {
      const std::int64_t t = config.timeout_for(attempt, jitter);
      EXPECT_GE(t, base) << "attempt " << attempt;
      EXPECT_LE(t, base + base / 4) << "attempt " << attempt;
    }
  }
}

TEST(NetBackoff, SequenceIsBitIdenticalForFixedSeed) {
  RetransmitConfig config;
  config.ack_timeout = 50;
  config.backoff = 1.7;
  config.max_timeout = 5000;

  const auto sequence = [&config](std::uint64_t seed) {
    Rng jitter(seed);
    std::vector<std::int64_t> out;
    for (int attempt = 0; attempt < 32; ++attempt) {
      out.push_back(config.timeout_for(attempt, jitter));
    }
    return out;
  };
  EXPECT_EQ(sequence(0x5eed), sequence(0x5eed));
  // Different seeds must produce a different jitter stream somewhere
  // (otherwise synchronized peers re-collide on every retry).
  EXPECT_NE(sequence(0x5eed), sequence(0x5eee));
}

TEST(NetBackoff, GrowsExponentiallyUntilTheCap) {
  RetransmitConfig config;
  config.ack_timeout = 10;
  config.backoff = 2.0;
  config.max_timeout = 160;
  // Jitter-free bounds: base doubles 10 -> 20 -> 40 -> 80 -> 160, then caps.
  Rng jitter(9);
  std::vector<std::int64_t> draws;
  for (int attempt = 0; attempt < 8; ++attempt) {
    draws.push_back(config.timeout_for(attempt, jitter));
  }
  for (int attempt = 0; attempt < 8; ++attempt) {
    const std::int64_t base = capped_base(config, attempt);
    EXPECT_GE(draws[attempt], base);
    EXPECT_LE(draws[attempt], base + base / 4);
  }
  // Attempts 4.. are all capped at max_timeout (+ jitter headroom).
  for (int attempt = 4; attempt < 8; ++attempt) {
    EXPECT_GE(draws[attempt], config.max_timeout);
    EXPECT_LE(draws[attempt], config.max_timeout + config.max_timeout / 4);
  }
}

TEST(NetBackoff, ReconnectPolicyIsDeterministicAndResets) {
  RetransmitConfig schedule;
  schedule.ack_timeout = 25;
  schedule.backoff = 2.0;
  schedule.max_timeout = 400;

  ReconnectPolicy a(schedule, 0x5eed);
  ReconnectPolicy b(schedule, 0x5eed);
  std::vector<std::int64_t> first;
  for (int i = 0; i < 8; ++i) {
    const std::int64_t da = a.next_delay_ms();
    EXPECT_EQ(da, b.next_delay_ms()) << "attempt " << i;
    first.push_back(da);
  }
  EXPECT_EQ(a.attempts(), 8);

  // reset() restarts the attempt ladder at the base delay.
  a.reset();
  EXPECT_EQ(a.attempts(), 0);
  const std::int64_t after_reset = a.next_delay_ms();
  EXPECT_GE(after_reset, schedule.ack_timeout);
  EXPECT_LE(after_reset, schedule.ack_timeout + schedule.ack_timeout / 4);
  // And the ladder still grows from there.
  EXPECT_GE(a.next_delay_ms(), 2 * schedule.ack_timeout);
}

TEST(NetBackoff, ReconnectPolicyDefaultsWhenScheduleDisabled) {
  // ack_timeout 0 means "retransmit layer off"; the reconnect policy still
  // needs a sane base delay and falls back to 100 ms.
  ReconnectPolicy policy(RetransmitConfig{}, 1);
  const std::int64_t delay = policy.next_delay_ms();
  EXPECT_GE(delay, 100);
  EXPECT_LE(delay, 125);
}

TEST(NetBackoff, ReconnectPolicyDelaysAreBounded) {
  // Even after absurdly many failed attempts the delay must stay finite and
  // capped (attempt clamping prevents pow() overflow).
  RetransmitConfig schedule;
  schedule.ack_timeout = 50;
  schedule.backoff = 2.0;
  schedule.max_timeout = 2000;
  ReconnectPolicy policy(schedule, 7);
  std::int64_t last = 0;
  for (int i = 0; i < 100; ++i) last = policy.next_delay_ms();
  EXPECT_GE(last, schedule.max_timeout);
  EXPECT_LE(last, schedule.max_timeout + schedule.max_timeout / 4);
}

}  // namespace
}  // namespace discsp
