// dcsp text format: round trips and malformed-input diagnostics.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <sstream>

#include "csp/serialize.h"
#include "gen/coloring_gen.h"
#include "multi/multi_awc.h"

namespace discsp {
namespace {

Problem sample_problem() {
  Problem p;
  p.add_variable(3);
  p.add_variable(2);
  p.add_variable(4);
  p.add_nogood(Nogood{{0, 1}, {1, 0}});
  p.add_nogood(Nogood{{1, 1}, {2, 3}});
  p.add_nogood(Nogood{{2, 0}});
  return p;
}

TEST(Serialize, ProblemRoundTrip) {
  const Problem original = sample_problem();
  std::ostringstream out;
  write_problem(out, original, "sample\nmulti-line comment");
  std::istringstream in(out.str());
  const Problem parsed = read_problem(in);
  EXPECT_EQ(parsed.num_variables(), original.num_variables());
  for (VarId v = 0; v < original.num_variables(); ++v) {
    EXPECT_EQ(parsed.domain_size(v), original.domain_size(v));
  }
  ASSERT_EQ(parsed.num_nogoods(), original.num_nogoods());
  for (const Nogood& ng : original.nogoods()) {
    EXPECT_TRUE(std::find(parsed.nogoods().begin(), parsed.nogoods().end(), ng) !=
                parsed.nogoods().end())
        << ng.str();
  }
}

TEST(Serialize, DistributedRoundTripKeepsOwnership) {
  const auto dp = multi::partition_round_robin(sample_problem(), 2);
  std::ostringstream out;
  write_distributed(out, dp);
  std::istringstream in(out.str());
  const auto parsed = read_distributed(in);
  EXPECT_EQ(parsed.num_agents(), 2);
  for (VarId v = 0; v < 3; ++v) {
    EXPECT_EQ(parsed.owner_of(v), dp.owner_of(v));
  }
}

TEST(Serialize, DefaultOwnershipIsIdentity) {
  std::istringstream in("dcsp 1\nvars 2\ndomain 0 2\ndomain 1 2\nnogood 0 0 1 0\n");
  const auto parsed = read_distributed(in);
  EXPECT_TRUE(parsed.is_one_var_per_agent());
}

TEST(Serialize, GeneratedInstanceRoundTrip) {
  Rng rng(3);
  const auto inst = gen::generate_coloring3(20, rng);
  std::ostringstream out;
  write_problem(out, inst.problem);
  std::istringstream in(out.str());
  const Problem parsed = read_problem(in);
  EXPECT_EQ(parsed.num_nogoods(), inst.problem.num_nogoods());
  EXPECT_TRUE(parsed.is_solution(inst.planted));
}

TEST(Serialize, CommentsAndBlankLinesIgnored) {
  std::istringstream in(
      "# leading comment\n"
      "dcsp 1\n"
      "\n"
      "vars 1   # trailing comment\n"
      "domain 0 2\n"
      "nogood 0 1\n");
  const Problem p = read_problem(in);
  EXPECT_EQ(p.num_variables(), 1);
  EXPECT_EQ(p.num_nogoods(), 1u);
}

TEST(Serialize, Rejections) {
  auto expect_throw = [](const std::string& text) {
    std::istringstream in(text);
    EXPECT_THROW(read_problem(in), std::runtime_error) << text;
  };
  expect_throw("");                                          // empty
  expect_throw("vars 2\n");                                  // missing header
  expect_throw("dcsp 2\nvars 1\ndomain 0 2\n");              // bad version
  expect_throw("dcsp 1\nnogood 0 0\n");                      // nogood before vars
  expect_throw("dcsp 1\nvars 1\ndomain 0 2\nbogus 1\n");     // unknown keyword
  expect_throw("dcsp 1\nvars 1\ndomain 0 2\nnogood 0 x\n");  // garbage token
  expect_throw("dcsp 1\nvars 1\ndomain 0 2\nnogood 0 7\n");  // value out of domain
  expect_throw("dcsp 1\nvars 2\ndomain 0 2\nnogood 0 0\n");  // x1 lacks a domain
  expect_throw("dcsp 1\nvars 1\ndomain 5 2\n");              // domain for unknown var
}

TEST(Serialize, FileRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() / "discsp_serialize_test.dcsp";
  write_problem_file(path.string(), sample_problem(), "file test");
  const Problem parsed = read_problem_file(path.string());
  EXPECT_EQ(parsed.num_nogoods(), 3u);
  std::filesystem::remove(path);
  EXPECT_THROW(read_problem_file(path.string()), std::runtime_error);
}

}  // namespace
}  // namespace discsp
