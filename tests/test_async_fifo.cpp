// AsyncEngine ordering guarantee: messages on one channel (sender ->
// receiver) are delivered in send order, whatever the sampled delays.
#include <gtest/gtest.h>

#include <map>

#include "sim/async_engine.h"

namespace discsp::sim {
namespace {

/// Sender emits a burst of sequence-numbered ok? messages at start;
/// receiver records the sequence it observes (in the `value` field).
class BurstSender final : public Agent {
 public:
  BurstSender(AgentId id, VarId var, AgentId peer, int burst)
      : id_(id), var_(var), peer_(peer), burst_(burst) {}
  AgentId id() const override { return id_; }
  VarId variable() const override { return var_; }
  Value current_value() const override { return 0; }
  void start(MessageSink& out) override {
    for (int i = 0; i < burst_; ++i) {
      out.send(peer_, OkMessage{.sender = id_, .var = var_, .value = i, .priority = 0});
    }
  }
  void receive(const MessagePayload&) override {}
  void compute(MessageSink&) override {}
  std::uint64_t take_checks() override { return 0; }

 private:
  AgentId id_;
  VarId var_;
  AgentId peer_;
  int burst_;
};

class SequenceRecorder final : public Agent {
 public:
  SequenceRecorder(AgentId id, VarId var) : id_(id), var_(var) {}
  AgentId id() const override { return id_; }
  VarId variable() const override { return var_; }
  Value current_value() const override { return 0; }
  void start(MessageSink&) override {}
  void receive(const MessagePayload& msg) override {
    const auto& ok = std::get<OkMessage>(msg);
    observed[ok.sender].push_back(ok.value);
  }
  void compute(MessageSink&) override {}
  std::uint64_t take_checks() override { return 0; }

  std::map<AgentId, std::vector<Value>> observed;

 private:
  AgentId id_;
  VarId var_;
};

TEST(AsyncFifo, PerChannelOrderPreservedUnderRandomDelays) {
  Problem p;
  p.add_variables(3, 2);
  p.add_nogood(Nogood{{0, 0}, {1, 0}, {2, 0}});  // keep the run alive briefly

  constexpr int kBurst = 40;
  auto recorder = std::make_unique<SequenceRecorder>(2, 2);
  SequenceRecorder* handle = recorder.get();

  std::vector<std::unique_ptr<Agent>> agents;
  agents.push_back(std::make_unique<BurstSender>(0, 0, 2, kBurst));
  agents.push_back(std::make_unique<BurstSender>(1, 1, 2, kBurst));
  agents.push_back(std::move(recorder));

  AsyncConfig config;
  config.min_delay = 1;
  config.max_delay = 30;  // wide spread: naive scheduling would interleave
  AsyncEngine engine(p, std::move(agents), config, Rng(99));
  engine.run();

  ASSERT_EQ(handle->observed.size(), 2u);
  for (const auto& [sender, sequence] : handle->observed) {
    ASSERT_EQ(sequence.size(), static_cast<std::size_t>(kBurst)) << "a" << sender;
    for (int i = 0; i < kBurst; ++i) {
      EXPECT_EQ(sequence[static_cast<std::size_t>(i)], i)
          << "channel a" << sender << " delivered out of order";
    }
  }
}

TEST(AsyncFifo, InterleavingAcrossChannelsIsAllowed) {
  // The FIFO guarantee is per channel only; across channels the engine must
  // be free to interleave (this documents intent more than it constrains).
  Problem p;
  p.add_variables(3, 2);
  p.add_nogood(Nogood{{0, 0}, {1, 0}, {2, 0}});

  auto recorder = std::make_unique<SequenceRecorder>(2, 2);
  SequenceRecorder* handle = recorder.get();
  std::vector<std::unique_ptr<Agent>> agents;
  agents.push_back(std::make_unique<BurstSender>(0, 0, 2, 5));
  agents.push_back(std::make_unique<BurstSender>(1, 1, 2, 5));
  agents.push_back(std::move(recorder));

  AsyncEngine engine(p, std::move(agents), AsyncConfig{}, Rng(7));
  engine.run();
  EXPECT_EQ(handle->observed[0].size(), 5u);
  EXPECT_EQ(handle->observed[1].size(), 5u);
}

}  // namespace
}  // namespace discsp::sim
