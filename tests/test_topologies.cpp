// Structured topologies and the uniform random SAT ensemble.
#include <gtest/gtest.h>

#include <set>

#include "csp/modeling.h"
#include "gen/topologies.h"
#include "solver/backtracking.h"
#include "solver/model_counter.h"

namespace discsp::gen {
namespace {

TEST(Topologies, RingShape) {
  const auto edges = ring_edges(5);
  EXPECT_EQ(edges.size(), 5u);
  // Odd ring: 2-coloring impossible, 3-coloring fine.
  EXPECT_EQ(count_solutions(model::coloring_problem(5, 2, edges)), 0u);
  EXPECT_GT(count_solutions(model::coloring_problem(5, 3, edges)), 0u);
  EXPECT_THROW(ring_edges(2), std::invalid_argument);
}

TEST(Topologies, EvenRingIsBipartite) {
  const auto edges = ring_edges(6);
  EXPECT_EQ(count_solutions(model::coloring_problem(6, 2, edges)), 2u);
}

TEST(Topologies, GridShapeAndBipartiteness) {
  const auto edges = grid_edges(3, 4);
  EXPECT_EQ(edges.size(), 3u * 3 + 2u * 4);  // horizontal + vertical
  EXPECT_EQ(count_solutions(model::coloring_problem(12, 2, edges)), 2u);
  EXPECT_THROW(grid_edges(0, 3), std::invalid_argument);
}

TEST(Topologies, CompleteGraphNeedsNColors) {
  const auto edges = complete_edges(4);
  EXPECT_EQ(edges.size(), 6u);
  EXPECT_EQ(count_solutions(model::coloring_problem(4, 3, edges)), 0u);
  EXPECT_EQ(count_solutions(model::coloring_problem(4, 4, edges)), 24u);  // 4!
}

TEST(Topologies, RandomEdgesDistinctAndBounded) {
  Rng rng(5);
  const auto edges = random_edges(10, 20, rng);
  EXPECT_EQ(edges.size(), 20u);
  std::set<std::pair<VarId, VarId>> seen(edges.begin(), edges.end());
  EXPECT_EQ(seen.size(), 20u);
  for (const auto& [u, v] : edges) {
    EXPECT_LT(u, v);
    EXPECT_LT(v, 10);
  }
  EXPECT_THROW(random_edges(4, 100, rng), std::invalid_argument);
}

TEST(Topologies, RandomKsatShape) {
  Rng rng(7);
  const auto cnf = random_ksat(20, 60, 3, rng);
  EXPECT_EQ(cnf.num_vars(), 20);
  EXPECT_EQ(cnf.num_clauses(), 60u);
  for (const auto& clause : cnf.clauses()) {
    EXPECT_EQ(clause.size(), 3u);
    EXPECT_FALSE(clause.is_tautology());
  }
}

TEST(Topologies, RandomKsatSpansSatAndUnsat) {
  // At a very high ratio random 3SAT is unsatisfiable w.h.p.; at a very low
  // one it is satisfiable w.h.p. This exercises both solver paths.
  Rng rng(9);
  const auto easy = random_ksat(20, 20, 3, rng);
  EXPECT_TRUE(sat::is_satisfiable(easy));
  const auto hard = random_ksat(12, 160, 3, rng);
  EXPECT_FALSE(sat::is_satisfiable(hard));
}

}  // namespace
}  // namespace discsp::gen
