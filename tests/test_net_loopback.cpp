// End-to-end tests of the multi-process runtime over loopback transports
// (net/coordinator.h, net/worker.h):
//  - a fault-free in-proc distributed solve terminates kSolved with a
//    validated assignment and zero monitor violations;
//  - the same protocol over real TCP sockets (127.0.0.1, ephemeral port)
//    solves identically;
//  - a deadline-bounded run degrades gracefully: kDeadline, timed_out set,
//    and a well-formed (full-size) partial assignment with merged metrics;
//  - chaos: under drop + duplication the run still solves and validates
//    with zero monitor violations (ISSUE acceptance bar);
//  - a worker killed mid-solve (exit_after_ms, the SIGKILL analogue) is
//    replaced by a fresh attach, and the run still solves;
//  - a *coordinator* killed mid-solve (halt_after_ms) is restarted with
//    --resume semantics: the journaled control plane is rebuilt, orphaned
//    workers re-rendezvous and continue, and the run solves under
//    incarnation 2 with zero monitor violations;
//  - a worker killed permanently (no replacement) has its shard migrated
//    onto survivors (--migrate-after-dead) and the run still solves with
//    zero monitor violations — nogood conservation checked per adoption;
//  - migration composes with coordinator failover: journaled r-assign
//    records replay the ownership overrides across a resume;
//  - a worker whose coordinator never returns exhausts its reconnect budget
//    and reports gave_up with a human-readable verdict.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "gen/coloring_gen.h"
#include "net/coordinator.h"
#include "net/jobspec.h"
#include "net/tcp_transport.h"
#include "net/transport.h"
#include "net/worker.h"

namespace discsp {
namespace {

using net::JobSpec;
using net::ServeConfig;
using net::ServeResult;
using net::StopReason;
using net::WorkerConfig;
using net::WorkerResult;

JobSpec make_job(int n, std::uint64_t seed, int num_workers) {
  Rng rng(seed);
  const auto instance = gen::generate_coloring3(n, rng);
  JobSpec spec;
  spec.bundle.algo = "awc";
  spec.bundle.strategy = "Rslv";
  spec.bundle.seed = seed;
  spec.bundle.instance = gen::distribute(instance);
  spec.bundle.planted = instance.planted;
  spec.bundle.initial.resize(static_cast<std::size_t>(n));
  for (auto& v : spec.bundle.initial) v = static_cast<Value>(rng.index(3));
  spec.bundle.monitor = true;
  spec.bundle.retransmit.ack_timeout = 25;
  spec.num_workers = num_workers;
  spec.report_interval_ms = 5;
  return spec;
}

WorkerConfig worker_config(const std::string& endpoint, int index) {
  WorkerConfig config;
  config.endpoint = endpoint;
  config.reconnect_seed = 0x5eed + static_cast<std::uint64_t>(index);
  config.max_connect_attempts = 20;
  return config;
}

/// Run serve() against `workers` worker threads on `transport`; joins all
/// workers before returning.
ServeResult run_loopback(net::Transport& transport, const std::string& bind,
                         const ServeConfig& config,
                         const std::vector<WorkerConfig>& workers,
                         std::vector<WorkerResult>* worker_results = nullptr) {
  auto listener = transport.listen(bind);
  std::vector<WorkerResult> results(workers.size());
  std::vector<std::thread> threads;
  threads.reserve(workers.size());
  for (std::size_t i = 0; i < workers.size(); ++i) {
    threads.emplace_back([&transport, &workers, &results, i] {
      results[i] = net::run_worker(transport, workers[i]);
    });
  }
  ServeResult served = net::serve(*listener, config);
  for (auto& t : threads) t.join();
  if (worker_results != nullptr) *worker_results = std::move(results);
  return served;
}

TEST(NetLoopback, InProcDistributedSolveValidates) {
  net::InProcTransport transport;
  ServeConfig config;
  config.job = make_job(16, 11, 3);
  config.deadline_ms = 30000;

  std::vector<WorkerConfig> workers;
  for (int i = 0; i < 3; ++i) workers.push_back(worker_config("coord", i));
  std::vector<WorkerResult> worker_results;
  const ServeResult result =
      run_loopback(transport, "coord", config, workers, &worker_results);

  ASSERT_TRUE(result.error.empty()) << result.error;
  EXPECT_EQ(result.reason, StopReason::kSolved);
  EXPECT_TRUE(result.run.metrics.solved);
  EXPECT_EQ(result.worker_restarts, 0);
  EXPECT_EQ(result.run.metrics.monitor.violations, 0u);
  EXPECT_TRUE(config.job.bundle.instance.problem().is_solution(
      result.run.assignment));
  for (const auto& wr : worker_results) {
    EXPECT_TRUE(wr.completed) << wr.error;
    EXPECT_EQ(wr.stop, StopReason::kSolved);
  }
}

TEST(NetLoopback, TcpDistributedSolveValidates) {
  net::TcpTransport transport;
  auto listener = transport.listen("127.0.0.1:0");
  const std::string endpoint =
      "127.0.0.1:" + std::to_string(listener->port());

  ServeConfig config;
  config.job = make_job(12, 21, 2);
  config.deadline_ms = 30000;
  config.transport = "tcp";

  std::vector<WorkerResult> results(2);
  std::vector<std::thread> threads;
  for (int i = 0; i < 2; ++i) {
    threads.emplace_back([&transport, &results, endpoint, i] {
      results[static_cast<std::size_t>(i)] =
          net::run_worker(transport, worker_config(endpoint, i));
    });
  }
  const ServeResult result = net::serve(*listener, config);
  for (auto& t : threads) t.join();

  ASSERT_TRUE(result.error.empty()) << result.error;
  EXPECT_EQ(result.reason, StopReason::kSolved);
  EXPECT_TRUE(config.job.bundle.instance.problem().is_solution(
      result.run.assignment));
  EXPECT_EQ(result.run.metrics.monitor.violations, 0u);
}

TEST(NetLoopback, DeadlineDegradesToWellFormedPartial) {
  // A large instance with a tiny budget: the run must stop kDeadline and
  // still return a full-size assignment snapshot plus merged metrics.
  net::InProcTransport transport;
  ServeConfig config;
  config.job = make_job(90, 31, 3);
  config.deadline_ms = 150;

  std::vector<WorkerConfig> workers;
  for (int i = 0; i < 3; ++i) workers.push_back(worker_config("deadline", i));
  const ServeResult result =
      run_loopback(transport, "deadline", config, workers);

  ASSERT_TRUE(result.error.empty()) << result.error;
  // The solver *could* win the race, but must never stop any other way.
  if (result.reason == StopReason::kSolved) {
    GTEST_SKIP() << "instance solved inside the deadline";
  }
  EXPECT_EQ(result.reason, StopReason::kDeadline);
  EXPECT_TRUE(result.run.metrics.timed_out);
  EXPECT_FALSE(result.run.metrics.solved);
  EXPECT_EQ(result.run.assignment.size(), 90u);
  EXPECT_GT(result.run.metrics.messages, 0u);
  EXPECT_EQ(result.run.metrics.monitor.violations, 0u);
}

TEST(NetLoopbackChaos, DropAndDuplicationStillSolves) {
  net::InProcTransport transport;
  ServeConfig config;
  config.job = make_job(24, 41, 3);
  config.job.bundle.faults.drop_rate = 0.10;
  config.job.bundle.faults.duplicate_rate = 0.05;
  config.job.bundle.faults.refresh_interval = 25;  // ms heartbeat cadence
  config.deadline_ms = 60000;

  std::vector<WorkerConfig> workers;
  for (int i = 0; i < 3; ++i) workers.push_back(worker_config("chaos", i));
  const ServeResult result = run_loopback(transport, "chaos", config, workers);

  ASSERT_TRUE(result.error.empty()) << result.error;
  EXPECT_EQ(result.reason, StopReason::kSolved);
  EXPECT_TRUE(config.job.bundle.instance.problem().is_solution(
      result.run.assignment));
  EXPECT_EQ(result.run.metrics.monitor.violations, 0u);
  EXPECT_GT(result.run.metrics.faults.dropped, 0u);
}

TEST(NetLoopbackChaos, KilledWorkerIsReplacedAndRunSolves) {
  // Worker 2 vanishes without a STOP handshake (the in-proc SIGKILL
  // analogue); a replacement attaches, gets restart=true + seq floors, and
  // the run completes. Drops keep the solve slow enough that the kill
  // reliably lands mid-run.
  net::InProcTransport transport;
  ServeConfig config;
  config.job = make_job(48, 51, 3);
  // Heavy drops force repair round-trips (>= one ack timeout each), so the
  // solve reliably outlasts the kill timer below.
  config.job.bundle.faults.drop_rate = 0.30;
  config.job.bundle.faults.refresh_interval = 25;
  config.deadline_ms = 120000;

  auto listener = transport.listen("kill");
  std::vector<WorkerResult> results(4);
  std::vector<std::thread> threads;
  for (int i = 0; i < 2; ++i) {
    WorkerConfig wc = worker_config("kill", i);
    threads.emplace_back([&transport, &results, wc, i] {
      results[static_cast<std::size_t>(i)] = net::run_worker(transport, wc);
    });
  }
  // The victim thread launches the replacement the instant the kill fires,
  // so the slot is re-filled with no sleep-based race.
  threads.emplace_back([&transport, &results] {
    WorkerConfig victim = worker_config("kill", 2);
    victim.exit_after_ms = 150;
    results[2] = net::run_worker(transport, victim);
    if (results[2].killed) {
      WorkerConfig replacement = worker_config("kill", 3);
      replacement.max_connect_attempts = 5;
      replacement.connect_timeout_ms = 200;
      results[3] = net::run_worker(transport, replacement);
    }
  });
  const ServeResult result = net::serve(*listener, config);
  for (auto& t : threads) t.join();

  ASSERT_TRUE(result.error.empty()) << result.error;
  EXPECT_EQ(result.reason, StopReason::kSolved);
  EXPECT_TRUE(config.job.bundle.instance.problem().is_solution(
      result.run.assignment));
  EXPECT_EQ(result.run.metrics.monitor.violations, 0u);
  if (results[2].killed && results[3].completed) {
    // The kill landed mid-run and the replacement incarnation was seen
    // through to the solved STOP — the expected (near-certain) outcome.
    EXPECT_GE(result.worker_restarts, 1);
    EXPECT_EQ(results[3].stop, StopReason::kSolved);
  } else if (!results[2].killed) {
    // The solve won the race against the kill timer; nothing to replace.
    EXPECT_TRUE(results[2].completed) << results[2].error;
  }
  // Remaining case (killed, replacement found the run already over): the
  // STOP raced the kill timer — benign, already covered by the solved
  // assertions above.
}

TEST(NetLoopbackChaos, HaltedCoordinatorIsResumedAndRunSolves) {
  // The coordinator dies abruptly mid-solve (halt_after_ms: no STOP, no
  // drain, no checkpoint — the in-proc SIGKILL analogue) and is restarted
  // with resume=true against the same journal. The workers park orphaned,
  // re-rendezvous with incarnation 2, and the run completes.
  const std::string journal =
      (std::filesystem::temp_directory_path() / "discsp_halt_resume.journal")
          .string();
  std::remove(journal.c_str());

  net::InProcTransport transport;
  ServeConfig config;
  config.job = make_job(48, 61, 3);
  // Heavy drops force repair round-trips, so the solve reliably outlasts
  // the halt timer.
  config.job.bundle.faults.drop_rate = 0.30;
  config.job.bundle.faults.refresh_interval = 25;
  config.deadline_ms = 120000;
  config.journal_path = journal;
  config.halt_after_ms = 200;

  std::vector<WorkerResult> results(3);
  std::vector<std::thread> threads;
  for (int i = 0; i < 3; ++i) {
    WorkerConfig wc = worker_config("failover", i);
    // The outage spans the restart gap; keep retrying well past it.
    wc.max_connect_attempts = 100;
    wc.connect_timeout_ms = 500;
    threads.emplace_back([&transport, &results, wc, i] {
      results[static_cast<std::size_t>(i)] = net::run_worker(transport, wc);
    });
  }

  ServeResult first;
  {
    auto listener = transport.listen("failover");
    first = net::serve(*listener, config);
    // The listener dies with this scope — exactly like the process.
  }
  if (!first.halted) {
    // The solve won the race against the halt timer; nothing to resume.
    for (auto& t : threads) t.join();
    GTEST_SKIP() << "instance solved before the halt fired";
  }
  EXPECT_EQ(first.coordinator_incarnation, 1u);

  ServeConfig resume = config;
  resume.halt_after_ms = 0;
  resume.resume = true;
  auto listener = transport.listen("failover");
  const ServeResult second = net::serve(*listener, resume);
  for (auto& t : threads) t.join();

  ASSERT_TRUE(second.error.empty()) << second.error;
  EXPECT_TRUE(second.resumed);
  EXPECT_EQ(second.coordinator_incarnation, 2u);
  EXPECT_EQ(second.reason, StopReason::kSolved);
  EXPECT_TRUE(config.job.bundle.instance.problem().is_solution(
      second.run.assignment));
  EXPECT_EQ(second.run.metrics.monitor.violations, 0u);
  int reconnects = 0;
  for (const auto& wr : results) {
    EXPECT_TRUE(wr.completed) << wr.error;
    EXPECT_EQ(wr.stop, StopReason::kSolved);
    reconnects += wr.reconnects;
  }
  // Every worker survived the outage by re-rendezvousing (continuation
  // attach), so the coordinator saw no worker *restarts*.
  EXPECT_GE(reconnects, 3);
  std::remove(journal.c_str());
}

TEST(NetLoopback, JobSpecMigrationFieldsRoundTripThroughTheWire) {
  // The welcome-time job spec carries the migration flag and the dynamic
  // ownership overrides; a worker parses them back bit-identically and
  // resolves owner_of() as override-first, home-shard fallback.
  JobSpec spec = make_job(12, 71, 3);
  spec.migrate = true;
  spec.owners = {{5, 2}, {9, 0}};

  const JobSpec parsed = net::parse_jobspec(net::serialize_jobspec(spec));
  EXPECT_TRUE(parsed.migrate);
  EXPECT_EQ(parsed.owners, spec.owners);
  EXPECT_EQ(parsed.owner_of(5), 2);             // override wins
  EXPECT_EQ(parsed.owner_of(9), 0);
  EXPECT_EQ(parsed.owner_of(4), spec.shard_of(4));  // home fallback
  EXPECT_EQ(parsed.num_workers, 3);

  // Without migration the lines are absent and the parse still agrees.
  JobSpec plain = make_job(12, 71, 3);
  const JobSpec replain = net::parse_jobspec(net::serialize_jobspec(plain));
  EXPECT_FALSE(replain.migrate);
  EXPECT_TRUE(replain.owners.empty());
}

TEST(NetLoopbackChaos, MigrationSurvivesPermanentWorkerLoss) {
  // One of four workers dies without a STOP handshake and is NEVER replaced.
  // With migrate_after_dead the coordinator re-shards the dead worker's
  // agents onto the survivors (MIGRATE/ADOPT), and the run still solves with
  // zero invariant violations — the handoff monitor checks nogood-count
  // conservation on every adoption, so violations == 0 is the conservation
  // assertion. Drops + duplicates keep the solve slow enough that the kill
  // and the dead-declaration window reliably land mid-run.
  net::InProcTransport transport;
  ServeConfig config;
  config.job = make_job(48, 81, 4);
  config.job.bundle.faults.drop_rate = 0.30;
  config.job.bundle.faults.duplicate_rate = 0.05;
  config.job.bundle.faults.refresh_interval = 25;
  config.deadline_ms = 120000;
  config.migrate_after_dead = true;
  config.supervisor.suspect_after_ms = 150;
  config.supervisor.dead_after_ms = 350;

  auto listener = transport.listen("migrate");
  std::vector<WorkerResult> results(4);
  std::vector<std::thread> threads;
  for (int i = 0; i < 3; ++i) {
    WorkerConfig wc = worker_config("migrate", i);
    threads.emplace_back([&transport, &results, wc, i] {
      results[static_cast<std::size_t>(i)] = net::run_worker(transport, wc);
    });
  }
  threads.emplace_back([&transport, &results] {
    WorkerConfig victim = worker_config("migrate", 3);
    victim.exit_after_ms = 150;
    results[3] = net::run_worker(transport, victim);
  });
  const ServeResult result = net::serve(*listener, config);
  for (auto& t : threads) t.join();

  ASSERT_TRUE(result.error.empty()) << result.error;
  EXPECT_EQ(result.reason, StopReason::kSolved);
  EXPECT_TRUE(config.job.bundle.instance.problem().is_solution(
      result.run.assignment));
  EXPECT_EQ(result.run.metrics.monitor.violations, 0u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(results[static_cast<std::size_t>(i)].completed)
        << results[static_cast<std::size_t>(i)].error;
  }
  if (results[3].killed) {
    // The kill landed mid-run: the victim's shard was adopted by survivors
    // (no replacement ever attached, so zero worker *restarts*).
    EXPECT_GT(result.agent_migrations, 0u);
    EXPECT_EQ(result.worker_restarts, 0);
  } else {
    // The solve won the race against the kill timer; nothing migrated.
    EXPECT_TRUE(results[3].completed) << results[3].error;
  }
}

TEST(NetLoopbackChaos, MigrationAndFailoverCompose) {
  // The hardest composition in the fault model: a worker dies permanently,
  // its agents migrate, and THEN the coordinator is killed mid-run. The
  // resumed coordinator replays the journaled ownership reassignments
  // (r-assign records), hands the adopted agents back out in the welcome
  // spec, and the run completes under incarnation 2.
  const std::string journal =
      (std::filesystem::temp_directory_path() / "discsp_migrate_resume.journal")
          .string();
  std::remove(journal.c_str());

  net::InProcTransport transport;
  ServeConfig config;
  config.job = make_job(60, 91, 3);
  config.job.bundle.faults.drop_rate = 0.35;
  config.job.bundle.faults.refresh_interval = 25;
  config.deadline_ms = 120000;
  config.journal_path = journal;
  config.migrate_after_dead = true;
  config.supervisor.suspect_after_ms = 150;
  config.supervisor.dead_after_ms = 300;
  // Kill at 150 ms, dead declaration at ~450 ms, adoptions right after, halt
  // at 600 ms: the coordinator dies with journaled reassignments on disk
  // while the (larger, heavily dropped) solve is still in flight.
  config.halt_after_ms = 600;

  std::vector<WorkerResult> results(3);
  std::vector<std::thread> threads;
  for (int i = 0; i < 2; ++i) {
    WorkerConfig wc = worker_config("migrate-failover", i);
    wc.max_connect_attempts = 100;
    wc.connect_timeout_ms = 500;
    threads.emplace_back([&transport, &results, wc, i] {
      results[static_cast<std::size_t>(i)] = net::run_worker(transport, wc);
    });
  }
  threads.emplace_back([&transport, &results] {
    WorkerConfig victim = worker_config("migrate-failover", 2);
    victim.exit_after_ms = 150;
    results[2] = net::run_worker(transport, victim);
  });

  ServeResult first;
  {
    auto listener = transport.listen("migrate-failover");
    first = net::serve(*listener, config);
  }
  if (!first.halted || !results[2].killed || first.agent_migrations == 0) {
    // The solve (or the kill/dead-window race) beat the timeline; the
    // composition under test never materialised this run.
    for (auto& t : threads) t.join();
    GTEST_SKIP() << "halt/migration race lost: halted=" << first.halted
                 << " migrations=" << first.agent_migrations;
  }

  ServeConfig resume = config;
  resume.halt_after_ms = 0;
  resume.resume = true;
  auto listener = transport.listen("migrate-failover");
  const ServeResult second = net::serve(*listener, resume);
  for (auto& t : threads) t.join();

  ASSERT_TRUE(second.error.empty()) << second.error;
  EXPECT_TRUE(second.resumed);
  EXPECT_EQ(second.coordinator_incarnation, 2u);
  EXPECT_EQ(second.reason, StopReason::kSolved);
  EXPECT_TRUE(config.job.bundle.instance.problem().is_solution(
      second.run.assignment));
  EXPECT_EQ(second.run.metrics.monitor.violations, 0u);
  // The replayed r-assign records rebuilt the ownership overrides; the
  // resumed run reports them (replay counts as migration for quiescence).
  EXPECT_GT(second.agent_migrations, 0u);
  for (int i = 0; i < 2; ++i) {
    EXPECT_TRUE(results[static_cast<std::size_t>(i)].completed)
        << results[static_cast<std::size_t>(i)].error;
    EXPECT_EQ(results[static_cast<std::size_t>(i)].stop, StopReason::kSolved);
  }
  std::remove(journal.c_str());
}

TEST(NetLoopback, WorkerGivesUpWithVerdictWhenCoordinatorNeverReturns) {
  net::InProcTransport transport;
  WorkerConfig config = worker_config("nobody-home", 0);
  config.max_connect_attempts = 3;
  config.connect_timeout_ms = 10;
  config.reconnect.ack_timeout = 1;  // fast backoff: keep the test quick

  const WorkerResult result = net::run_worker(transport, config);
  EXPECT_FALSE(result.completed);
  EXPECT_TRUE(result.gave_up);
  EXPECT_NE(result.verdict.find("3 attempts"), std::string::npos)
      << result.verdict;
  EXPECT_FALSE(result.error.empty());
}

TEST(NetLoopback, MissingPortFileIsRetriedThenReportedInTheVerdict) {
  // A port-file worker whose file never appears burns its attempts without
  // ever dialing, and the verdict names the file it was watching.
  net::InProcTransport transport;
  WorkerConfig config = worker_config("unused", 0);
  config.port_file =
      (std::filesystem::temp_directory_path() / "discsp_no_such_port_file")
          .string();
  std::remove(config.port_file.c_str());
  config.max_connect_attempts = 4;
  config.reconnect.ack_timeout = 1;

  const WorkerResult result = net::run_worker(transport, config);
  EXPECT_TRUE(result.gave_up);
  EXPECT_NE(result.verdict.find("port file"), std::string::npos)
      << result.verdict;
}

}  // namespace
}  // namespace discsp
