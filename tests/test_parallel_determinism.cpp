// The parallel experiment runner must be a pure wall-clock optimization:
// every aggregate — including floating-point means, medians and tails —
// is bit-identical at any thread count, because each (instance, init) cell
// seeds its own RNG streams and the fold runs in fixed serial order.
#include <gtest/gtest.h>

#include <vector>

#include "analysis/experiment.h"
#include "analysis/parallel.h"

namespace discsp::analysis {
namespace {

void expect_rows_bit_identical(const std::vector<AggregateRow>& a,
                               const std::vector<AggregateRow>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].label, b[i].label);
    EXPECT_EQ(a[i].trials, b[i].trials);
    EXPECT_EQ(a[i].mean_cycles, b[i].mean_cycles);
    EXPECT_EQ(a[i].mean_maxcck, b[i].mean_maxcck);
    EXPECT_EQ(a[i].solved_percent, b[i].solved_percent);
    EXPECT_EQ(a[i].mean_nogoods_generated, b[i].mean_nogoods_generated);
    EXPECT_EQ(a[i].mean_redundant_generations, b[i].mean_redundant_generations);
    EXPECT_EQ(a[i].median_cycles, b[i].median_cycles);
    EXPECT_EQ(a[i].p95_cycles, b[i].p95_cycles);
    EXPECT_EQ(a[i].max_cycles, b[i].max_cycles);
    EXPECT_EQ(a[i].median_maxcck, b[i].median_maxcck);
    EXPECT_EQ(a[i].mean_total_checks, b[i].mean_total_checks);
    EXPECT_EQ(a[i].mean_work_ops, b[i].mean_work_ops);
  }
}

TEST(ParallelFor, CoversEveryIndexExactlyOnceAtAnyThreadCount) {
  for (int threads : {1, 2, 4, 8}) {
    std::vector<std::atomic<int>> hits(37);
    parallel_for(hits.size(), threads,
                 [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "threads=" << threads << " i=" << i;
    }
  }
}

TEST(ParallelFor, PropagatesTheFirstException) {
  EXPECT_THROW(parallel_for(16, 4,
                            [](std::size_t i) {
                              if (i % 5 == 0) throw std::runtime_error("boom");
                            }),
               std::runtime_error);
}

TEST(ResolveThreads, MapsZeroToHardware) {
  EXPECT_GE(resolve_threads(0), 1);
  EXPECT_EQ(resolve_threads(3), 3);
  EXPECT_EQ(resolve_threads(-2), resolve_threads(0));
}

TEST(ParallelDeterminism, AggregatesBitIdenticalAcrossThreadCounts) {
  ExperimentSpec spec;
  spec.family = ProblemFamily::kColoring3;
  spec.n = 24;
  spec.instances = 3;
  spec.inits_per_instance = 4;
  spec.seed = 20000704;
  spec.max_cycles = 2000;
  const std::vector<NamedRunner> runners = {
      {"Rslv", awc_runner("Rslv", true, spec.max_cycles)},
      {"No", awc_runner("No", true, spec.max_cycles)},
      {"DB", db_runner(spec.max_cycles)},
      {"ABT", abt_runner(true, spec.max_cycles)},
  };
  const auto serial = run_comparison(spec, runners, 1);
  const auto four = run_comparison(spec, runners, 4);
  const auto eight = run_comparison(spec, runners, 8);
  expect_rows_bit_identical(serial, four);
  expect_rows_bit_identical(serial, eight);
  // Sanity: the runs actually did work.
  for (const auto& row : serial) EXPECT_EQ(row.trials, 12) << row.label;
}

TEST(ParallelDeterminism, SatFamilyMatchesToo) {
  ExperimentSpec spec;
  spec.family = ProblemFamily::kSat3;
  spec.n = 20;
  spec.instances = 2;
  spec.inits_per_instance = 3;
  spec.seed = 7;
  spec.max_cycles = 2000;
  const std::vector<NamedRunner> runners = {
      {"Rslv", awc_runner("Rslv", true, spec.max_cycles)},
  };
  expect_rows_bit_identical(run_comparison(spec, runners, 1),
                            run_comparison(spec, runners, 8));
}

}  // namespace
}  // namespace discsp::analysis
