// ABT-style agent_view learning plugged into AWC.
#include <gtest/gtest.h>

#include "awc/awc_agent.h"
#include "awc/awc_solver.h"
#include "csp/validate.h"
#include "gen/coloring_gen.h"
#include "learning/strategy.h"
#include "learning/view_learning.h"

namespace discsp {
namespace {

TEST(ViewLearning, ReturnsTheViewVerbatim) {
  learning::ViewLearning view;
  const std::vector<Assignment> agent_view{{0, 1}, {3, 2}};
  learning::DeadendContext ctx;
  ctx.agent_view = &agent_view;
  std::uint64_t checks = 0;
  const auto learned = view.learn(ctx, checks);
  ASSERT_TRUE(learned.has_value());
  EXPECT_EQ(*learned, (Nogood{{0, 1}, {3, 2}}));
  EXPECT_EQ(checks, 0u) << "view learning is the zero-cost method";
}

TEST(ViewLearning, EmptyViewMeansContradiction) {
  learning::ViewLearning view;
  const std::vector<Assignment> agent_view;
  learning::DeadendContext ctx;
  ctx.agent_view = &agent_view;
  std::uint64_t checks = 0;
  const auto learned = view.learn(ctx, checks);
  ASSERT_TRUE(learned.has_value());
  EXPECT_TRUE(learned->empty());
}

TEST(ViewLearning, MissingViewThrows) {
  learning::ViewLearning view;
  learning::DeadendContext ctx;
  std::uint64_t checks = 0;
  EXPECT_THROW(view.learn(ctx, checks), std::invalid_argument);
}

TEST(ViewLearning, FactoryKnowsIt) {
  EXPECT_EQ(learning::make_strategy("View")->name(), "View");
  EXPECT_EQ(learning::make_strategy("view")->name(), "View");
}

TEST(ViewLearning, AwcSolvesWithIt) {
  Rng rng(3);
  const auto inst = gen::generate_coloring3(20, rng);
  const auto dp = gen::distribute(inst);
  awc::AwcSolver solver(dp, learning::ViewLearning{});
  const auto result = solver.solve(solver.random_initial(rng), rng.derive(1));
  ASSERT_TRUE(result.metrics.solved);
  EXPECT_TRUE(validate_solution(inst.problem, result.assignment).ok);
}

TEST(ViewLearning, LearnedNogoodsAreEntailedOnSmallInstances) {
  Rng rng(5);
  const auto inst = gen::generate_coloring3(9, rng);
  const auto dp = gen::distribute(inst);
  awc::AwcSolver solver(dp, learning::ViewLearning{});
  Rng trial(7);
  const auto initial = solver.random_initial(trial);
  auto agents = solver.make_agents(initial, trial.derive(1));
  std::vector<awc::AwcAgent*> handles;
  for (auto& a : agents) handles.push_back(dynamic_cast<awc::AwcAgent*>(a.get()));
  sim::SyncEngine engine(dp.problem(), std::move(agents));
  const auto result = engine.run(10000);
  ASSERT_TRUE(result.metrics.solved);
  for (const awc::AwcAgent* agent : handles) {
    const NogoodStore& store = agent->store();
    for (std::size_t i = store.initial_count(); i < store.size(); ++i) {
      EXPECT_TRUE(nogood_is_entailed(dp.problem(), store.at(i)))
          << store.at(i).str();
    }
  }
}

}  // namespace
}  // namespace discsp
