// Credit-recovery termination detection: exact conservation, carrying, and
// agreement with the omniscient quiescence scan on real AWC runs.
#include <gtest/gtest.h>

#include "awc/awc_solver.h"
#include "csp/validate.h"
#include "gen/coloring_gen.h"
#include "learning/resolvent.h"
#include "sim/termination.h"
#include "sim/thread_runtime.h"

namespace discsp::sim {
namespace {

TEST(CreditLedger, TerminatesExactlyWhenAllSharesReturn) {
  CreditLedger ledger(3);
  EXPECT_FALSE(ledger.terminated());
  const int unit[] = {0};
  ledger.deposit(unit);
  ledger.deposit(unit);
  EXPECT_FALSE(ledger.terminated());
  ledger.deposit(unit);
  EXPECT_TRUE(ledger.terminated());
  EXPECT_DOUBLE_EQ(ledger.recovered(), 3.0);
}

TEST(CreditLedger, CarriesHalvesIntoUnits) {
  CreditLedger ledger(1);
  const int halves[] = {1, 1};  // 1/2 + 1/2
  ledger.deposit(halves);
  EXPECT_TRUE(ledger.terminated());
}

TEST(CreditLedger, DeepChainsCarryCorrectly) {
  CreditLedger ledger(1);
  // 1 = 1/2 + 1/4 + ... + 2^-20 + 2^-20.
  std::vector<int> pieces;
  for (int k = 1; k <= 20; ++k) pieces.push_back(k);
  pieces.push_back(20);
  ledger.deposit(pieces);
  EXPECT_TRUE(ledger.terminated());
}

TEST(CreditLedger, PartialCreditIsNotTermination) {
  CreditLedger ledger(1);
  const int piece[] = {1};  // only half came home
  ledger.deposit(piece);
  EXPECT_FALSE(ledger.terminated());
  EXPECT_DOUBLE_EQ(ledger.recovered(), 0.5);
}

TEST(CreditLedger, RejectsNonPositiveShares) {
  EXPECT_THROW(CreditLedger(0), std::invalid_argument);
}

TEST(CreditPool, SplitConservesValueExactly) {
  CreditPool pool;
  pool.add(0);  // one unit
  CreditLedger ledger(1);
  std::vector<int> attached;
  for (int i = 0; i < 40; ++i) attached.push_back(pool.split());
  // Returning both the attached pieces and the remainder recovers the unit.
  ledger.deposit(attached);
  ledger.deposit(pool.drain());
  EXPECT_TRUE(ledger.terminated());
}

TEST(CreditPool, SplitFromEmptyThrows) {
  CreditPool pool;
  EXPECT_THROW(pool.split(), std::logic_error);
}

TEST(CreditPool, SplitsLargestPieceFirst) {
  CreditPool pool;
  pool.add(5);
  pool.add(1);  // largest piece (2^-1)
  EXPECT_EQ(pool.split(), 2) << "the 2^-1 piece should be halved, giving 2^-2";
}

TEST(CreditTermination, ThreadRuntimeDetectsAndSolves) {
  Rng rng(61);
  const auto inst = gen::generate_coloring3(14, rng);
  const auto dp = gen::distribute(inst);
  awc::AwcSolver solver(dp, learning::ResolventLearning{});
  const auto initial = solver.random_initial(rng);

  ThreadRuntimeConfig config;
  config.use_credit_termination = true;
  ThreadRuntime runtime(dp.problem(), solver.make_agents(initial, rng.derive(1)), config);
  const auto result = runtime.run();
  ASSERT_TRUE(result.metrics.solved);
  EXPECT_TRUE(validate_solution(inst.problem, result.assignment).ok);
  EXPECT_TRUE(runtime.credit_fully_recovered())
      << "after a detected termination every credit share must be home";
}

TEST(CreditTermination, MatchesOmniscientDetection) {
  // The same run must solve under both detection mechanisms.
  Rng rng(67);
  const auto inst = gen::generate_coloring3(12, rng);
  const auto dp = gen::distribute(inst);
  awc::AwcSolver solver(dp, learning::ResolventLearning{});
  const auto initial = solver.random_initial(rng);

  for (const bool use_credit : {true, false}) {
    ThreadRuntimeConfig config;
    config.use_credit_termination = use_credit;
    ThreadRuntime runtime(dp.problem(), solver.make_agents(initial, rng.derive(2)),
                          config);
    const auto result = runtime.run();
    ASSERT_TRUE(result.metrics.solved) << "credit=" << use_credit;
    EXPECT_TRUE(validate_solution(inst.problem, result.assignment).ok);
  }
}

}  // namespace
}  // namespace discsp::sim
