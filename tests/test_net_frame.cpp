// Net control-frame codec tests (net/netframe.h):
//  - every frame kind round-trips through encode_net_frame/decode_net_frame;
//  - hostile input never decodes: truncation, checksum damage, unknown
//    kinds and out-of-bounds fields are rejected with the right error;
//  - the RunMetrics counter words round-trip through
//    encode_metrics_words/decode_metrics_words, and short (older-worker)
//    word lists leave the trailing counters untouched.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "net/netframe.h"
#include "sim/message.h"

namespace discsp {
namespace {

using net::decode_net_frame;
using net::encode_net_frame;
using net::NetAck;
using net::NetDecodeError;
using net::NetError;
using net::NetErrorCode;
using net::NetFrame;
using net::NetHello;
using net::NetJob;
using net::NetPing;
using net::NetPong;
using net::NetRoute;
using net::NetStats;
using net::NetStop;
using net::NetWelcome;
using net::StopReason;
using sim::WireFrame;

WireFrame sealed_payload() {
  // A plausible payload frame; the route codec treats it as an opaque blob.
  sim::OkMessage ok;
  ok.sender = 2;
  ok.var = 2;
  ok.value = 1;
  ok.priority = 3;
  ok.seq = 7;
  return sim::encode_frame(ok);
}

TEST(NetFrame, HelloRoundTrip) {
  NetHello hello;
  hello.shard = 2;
  hello.digest = 0xfeedULL;
  hello.coord_incarnation = 3;
  auto decoded = decode_net_frame(encode_net_frame(hello));
  ASSERT_TRUE(decoded.ok());
  const auto& got = std::get<NetHello>(*decoded.frame);
  EXPECT_EQ(got.proto, net::kNetProtoVersion);
  EXPECT_EQ(got.shard, 2u);
  EXPECT_EQ(got.digest, 0xfeedULL);
  EXPECT_EQ(got.coord_incarnation, 3u);
}

TEST(NetFrame, WelcomeRoundTrip) {
  NetWelcome welcome;
  welcome.shard = 1;
  welcome.num_workers = 3;
  welcome.digest = 42;
  welcome.incarnation = 4;
  welcome.restart = true;
  welcome.coord_incarnation = 2;
  auto decoded = decode_net_frame(encode_net_frame(welcome));
  ASSERT_TRUE(decoded.ok());
  const auto& got = std::get<NetWelcome>(*decoded.frame);
  EXPECT_EQ(got.shard, 1u);
  EXPECT_EQ(got.num_workers, 3u);
  EXPECT_EQ(got.digest, 42u);
  EXPECT_EQ(got.incarnation, 4u);
  EXPECT_TRUE(got.restart);
  EXPECT_EQ(got.coord_incarnation, 2u);
}

TEST(NetFrame, JobRoundTripIncludingNulBytes) {
  NetJob job;
  job.text = std::string("job 1\nline\0with nul\n", 20);
  auto decoded = decode_net_frame(encode_net_frame(job));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(std::get<NetJob>(*decoded.frame).text, job.text);
}

TEST(NetFrame, RouteRoundTripPreservesEmbeddedFrameVerbatim) {
  NetRoute route;
  route.from = 2;
  route.to = 5;
  route.track_seq = 9;
  route.frame = sealed_payload();
  // Mangle the embedded frame: the route codec must carry it verbatim (the
  // receiving worker's decode_frame is the validator, not the router).
  route.frame[1] ^= 0xff;
  auto decoded = decode_net_frame(encode_net_frame(route));
  ASSERT_TRUE(decoded.ok());
  const auto& got = std::get<NetRoute>(*decoded.frame);
  EXPECT_EQ(got.from, 2);
  EXPECT_EQ(got.to, 5);
  EXPECT_EQ(got.track_seq, 9u);
  EXPECT_EQ(got.frame, route.frame);
}

TEST(NetFrame, AckRoundTrip) {
  NetAck ack;
  ack.from = 3;
  ack.to = 1;
  ack.seq = 77;
  auto decoded = decode_net_frame(encode_net_frame(ack));
  ASSERT_TRUE(decoded.ok());
  const auto& got = std::get<NetAck>(*decoded.frame);
  EXPECT_EQ(got.from, 3);
  EXPECT_EQ(got.to, 1);
  EXPECT_EQ(got.seq, 77u);
}

TEST(NetFrame, StatsRoundTrip) {
  NetStats stats;
  stats.shard = 2;
  stats.incarnation = 3;
  stats.idle = true;
  stats.insoluble = true;
  stats.final_report = true;
  stats.insoluble_agent = 4;
  stats.sent = 100;
  stats.processed = 99;
  stats.metrics_words = {1, 2, 3, 4, 5};
  stats.values = {{0, -2}, {3, 1}, {6, 0}};
  auto decoded = decode_net_frame(encode_net_frame(stats));
  ASSERT_TRUE(decoded.ok());
  const auto& got = std::get<NetStats>(*decoded.frame);
  EXPECT_EQ(got.shard, 2u);
  EXPECT_EQ(got.incarnation, 3u);
  EXPECT_TRUE(got.idle);
  EXPECT_TRUE(got.insoluble);
  EXPECT_TRUE(got.final_report);
  EXPECT_EQ(got.insoluble_agent, 4);
  EXPECT_EQ(got.sent, 100u);
  EXPECT_EQ(got.processed, 99u);
  EXPECT_EQ(got.metrics_words, stats.metrics_words);
  EXPECT_EQ(got.values, stats.values);
}

TEST(NetFrame, StopPingPongErrorRoundTrip) {
  {
    auto decoded = decode_net_frame(
        encode_net_frame(NetStop{StopReason::kDeadline}));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(std::get<NetStop>(*decoded.frame).reason, StopReason::kDeadline);
  }
  {
    NetPing ping;
    ping.nonce = 11;
    ping.sent_ms = -5;
    auto decoded = decode_net_frame(encode_net_frame(ping));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(std::get<NetPing>(*decoded.frame).nonce, 11u);
    EXPECT_EQ(std::get<NetPing>(*decoded.frame).sent_ms, -5);
  }
  {
    NetPong pong;
    pong.nonce = 12;
    pong.sent_ms = 333;
    auto decoded = decode_net_frame(encode_net_frame(pong));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(std::get<NetPong>(*decoded.frame).nonce, 12u);
    EXPECT_EQ(std::get<NetPong>(*decoded.frame).sent_ms, 333);
  }
  {
    auto decoded = decode_net_frame(
        encode_net_frame(NetError{NetErrorCode::kDigestMismatch}));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(std::get<NetError>(*decoded.frame).code,
              NetErrorCode::kDigestMismatch);
  }
  {
    // The failover refusal code added with protocol v2.
    auto decoded = decode_net_frame(
        encode_net_frame(NetError{NetErrorCode::kStaleCoordinator}));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(std::get<NetError>(*decoded.frame).code,
              NetErrorCode::kStaleCoordinator);
  }
}

TEST(NetFrame, MigrationFramesRoundTrip) {
  // The protocol v3 shard-migration quartet: MIGRATE (capsule upload /
  // handback), ADOPT (takeover order), ADOPT_ACK, RELEASE.
  {
    net::NetMigrate migrate;
    migrate.agent = 5;
    migrate.seq = 77;
    migrate.release = true;
    migrate.capsule = {1, 2, 3, 4};
    auto decoded = decode_net_frame(encode_net_frame(migrate));
    ASSERT_TRUE(decoded.ok());
    const auto& got = std::get<net::NetMigrate>(*decoded.frame);
    EXPECT_EQ(got.agent, 5);
    EXPECT_EQ(got.seq, 77u);
    EXPECT_TRUE(got.release);
    EXPECT_EQ(got.capsule, (std::vector<std::uint64_t>{1, 2, 3, 4}));
  }
  {
    net::NetAdopt adopt;
    adopt.agent = 9;
    adopt.seq_floor = 1234;
    adopt.have_capsule = true;
    adopt.capsule = {42};
    auto decoded = decode_net_frame(encode_net_frame(adopt));
    ASSERT_TRUE(decoded.ok());
    const auto& got = std::get<net::NetAdopt>(*decoded.frame);
    EXPECT_EQ(got.agent, 9);
    EXPECT_EQ(got.seq_floor, 1234u);
    EXPECT_TRUE(got.have_capsule);
    EXPECT_EQ(got.capsule, (std::vector<std::uint64_t>{42}));
  }
  {
    // Capsule-less ADOPT: the adopter falls back to crash_restart.
    net::NetAdopt adopt;
    adopt.agent = 0;
    adopt.seq_floor = 1;
    auto decoded = decode_net_frame(encode_net_frame(adopt));
    ASSERT_TRUE(decoded.ok());
    EXPECT_FALSE(std::get<net::NetAdopt>(*decoded.frame).have_capsule);
    EXPECT_TRUE(std::get<net::NetAdopt>(*decoded.frame).capsule.empty());
  }
  {
    net::NetAdoptAck ack;
    ack.agent = 3;
    ack.learned = 17;
    ack.seq_floor = 1234;
    auto decoded = decode_net_frame(encode_net_frame(ack));
    ASSERT_TRUE(decoded.ok());
    const auto& got = std::get<net::NetAdoptAck>(*decoded.frame);
    EXPECT_EQ(got.agent, 3);
    EXPECT_EQ(got.learned, 17u);
    EXPECT_EQ(got.seq_floor, 1234u);
  }
  {
    auto decoded = decode_net_frame(encode_net_frame(net::NetRelease{21}));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(std::get<net::NetRelease>(*decoded.frame).agent, 21);
  }
}

TEST(NetFrame, MigrationFramesRejectBadBounds) {
  {
    net::NetMigrate migrate;
    migrate.agent = -1;
    EXPECT_EQ(decode_net_frame(encode_net_frame(migrate)).error,
              NetDecodeError::kBadBounds);
  }
  {
    // A capsule-less ADOPT must not smuggle capsule words.
    net::NetAdopt adopt;
    adopt.agent = 1;
    adopt.have_capsule = false;
    adopt.capsule = {1, 2};
    EXPECT_EQ(decode_net_frame(encode_net_frame(adopt)).error,
              NetDecodeError::kBadBounds);
  }
  {
    net::NetAdoptAck ack;
    ack.agent = -2;
    EXPECT_EQ(decode_net_frame(encode_net_frame(ack)).error,
              NetDecodeError::kBadBounds);
  }
  {
    net::NetRelease release;
    release.agent = -1;
    EXPECT_EQ(decode_net_frame(encode_net_frame(release)).error,
              NetDecodeError::kBadBounds);
  }
}

TEST(NetFrame, RejectsTruncation) {
  // Losing the trailing word breaks the seal (or the length, whichever the
  // decoder checks first) — either way the frame must not decode.
  auto frame = encode_net_frame(NetHello{});
  frame.pop_back();
  EXPECT_FALSE(decode_net_frame(frame).ok());
  EXPECT_EQ(decode_net_frame(WireFrame{}).error, NetDecodeError::kTruncated);
}

TEST(NetFrame, RejectsChecksumDamage) {
  auto frame = encode_net_frame(NetAck{1, 2, 3});
  frame[2] ^= 1;  // single bit flip, length preserved
  EXPECT_EQ(decode_net_frame(frame).error, NetDecodeError::kChecksum);
}

TEST(NetFrame, RejectsUnknownKind) {
  // Re-seal after the kind rewrite so only the kind check can object.
  auto frame = encode_net_frame(NetPing{});
  WireFrame words(frame.begin(), frame.end() - 1);
  words[0] = 999;
  WireFrame resealed = words;
  sim::seal_frame(resealed);
  EXPECT_EQ(decode_net_frame(resealed).error, NetDecodeError::kBadKind);
  // Payload kinds (< 100) must never decode as net frames.
  words[0] = 0;
  resealed = words;
  sim::seal_frame(resealed);
  EXPECT_EQ(decode_net_frame(resealed).error, NetDecodeError::kBadKind);
}

TEST(NetFrame, RejectsOutOfBoundsFields) {
  {
    NetHello hello;
    hello.shard = net::kMaxWorkers;  // valid shards are < kMaxWorkers
    EXPECT_EQ(decode_net_frame(encode_net_frame(hello)).error,
              NetDecodeError::kBadBounds);
  }
  {
    NetWelcome welcome;
    welcome.num_workers = net::kMaxWorkers + 1;
    EXPECT_EQ(decode_net_frame(encode_net_frame(welcome)).error,
              NetDecodeError::kBadBounds);
  }
  {
    // Coordinator incarnations count from 1; a zero on the wire is bogus.
    NetWelcome welcome;
    welcome.coord_incarnation = 0;
    EXPECT_EQ(decode_net_frame(encode_net_frame(welcome)).error,
              NetDecodeError::kBadBounds);
  }
  {
    NetStop stop;
    stop.reason = static_cast<StopReason>(99);
    EXPECT_EQ(decode_net_frame(encode_net_frame(stop)).error,
              NetDecodeError::kBadBounds);
  }
  {
    NetError error;
    error.code = static_cast<NetErrorCode>(99);
    EXPECT_EQ(decode_net_frame(encode_net_frame(error)).error,
              NetDecodeError::kBadBounds);
  }
}

TEST(NetFrame, FuzzTruncatedPrefixesNeverDecode) {
  // Every strict prefix of a valid frame must be rejected, never crash.
  NetStats stats;
  stats.metrics_words = {7, 8, 9};
  stats.values = {{1, 2}, {3, 4}};
  const auto frame = encode_net_frame(stats);
  for (std::size_t len = 0; len < frame.size(); ++len) {
    WireFrame prefix(frame.begin(), frame.begin() + len);
    EXPECT_FALSE(decode_net_frame(prefix).ok()) << "prefix length " << len;
  }
}

/// One encoding of every control frame, incarnation fields populated —
/// the corpus the mutation fuzz below walks.
std::vector<WireFrame> fuzz_corpus() {
  NetHello hello;
  hello.shard = 1;
  hello.digest = 0xabcULL;
  hello.coord_incarnation = 5;
  NetWelcome welcome;
  welcome.shard = 2;
  welcome.num_workers = 4;
  welcome.digest = 0xabcULL;
  welcome.incarnation = 3;
  welcome.restart = true;
  welcome.coord_incarnation = 2;
  NetRoute route;
  route.from = 1;
  route.to = 2;
  route.track_seq = 9;
  route.frame = sealed_payload();
  NetStats stats;
  stats.shard = 1;
  stats.incarnation = 2;
  stats.metrics_words = {1, 2, 3};
  stats.values = {{0, 1}, {2, -1}};
  net::NetMigrate migrate;
  migrate.agent = 4;
  migrate.seq = 11;
  migrate.capsule = {5, 6, 7};
  net::NetAdopt adopt;
  adopt.agent = 4;
  adopt.seq_floor = 12;
  adopt.have_capsule = true;
  adopt.capsule = {5, 6, 7};
  return {encode_net_frame(hello),
          encode_net_frame(welcome),
          encode_net_frame(NetJob{"job 1\n"}),
          encode_net_frame(route),
          encode_net_frame(NetAck{1, 2, 3}),
          encode_net_frame(stats),
          encode_net_frame(NetStop{StopReason::kSolved}),
          encode_net_frame(NetPing{7, 8}),
          encode_net_frame(NetPong{7, 8}),
          encode_net_frame(NetError{NetErrorCode::kStaleCoordinator}),
          encode_net_frame(migrate),
          encode_net_frame(adopt),
          encode_net_frame(net::NetAdoptAck{4, 2, 12}),
          encode_net_frame(net::NetRelease{4})};
}

TEST(NetFrame, FuzzTruncatedPrefixesOfEveryKindNeverDecode) {
  for (const WireFrame& frame : fuzz_corpus()) {
    for (std::size_t len = 0; len < frame.size(); ++len) {
      WireFrame prefix(frame.begin(), frame.begin() + len);
      EXPECT_FALSE(decode_net_frame(prefix).ok())
          << "kind " << frame[0] << " prefix length " << len;
    }
  }
}

TEST(NetFrame, FuzzBitFlipsNeverDecodeOrCrash) {
  // Single bit flips across every word of every control frame: the seal
  // catches them all (decode may also reject on length/bounds first, but a
  // flipped frame must never decode as valid).
  for (const WireFrame& frame : fuzz_corpus()) {
    for (std::size_t w = 0; w < frame.size(); ++w) {
      for (int bit = 0; bit < 64; bit += 7) {
        WireFrame mutated = frame;
        mutated[w] ^= 1ULL << bit;
        EXPECT_FALSE(decode_net_frame(mutated).ok())
            << "kind " << frame[0] << " word " << w << " bit " << bit;
      }
    }
  }
}

TEST(NetFrame, FuzzRandomWordsNeverCrash) {
  // Hostile streams: seeded random word salads, some resealed so they pass
  // the checksum and exercise the semantic validators. Nothing may throw.
  std::uint64_t x = 0x9e3779b97f4a7c15ULL;
  const auto next = [&x] {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
  };
  for (int trial = 0; trial < 2000; ++trial) {
    WireFrame frame(static_cast<std::size_t>(next() % 24), 0);
    for (auto& word : frame) word = next();
    if (!frame.empty()) {
      // Half the trials target real control kinds with garbage fields.
      if (trial % 2 == 0) frame[0] = 100 + next() % 14;
      if (trial % 4 < 2 && frame.size() >= 2) sim::seal_frame(frame);
    }
    (void)decode_net_frame(frame);  // must not crash; result irrelevant
  }
}

TEST(NetFrame, MetricsWordsRoundTrip) {
  sim::RunMetrics metrics;
  metrics.messages = 10;
  metrics.total_checks = 20;
  metrics.work_ops = 30;
  metrics.nogoods_generated = 40;
  metrics.redundant_generations = 50;
  metrics.refresh_messages = 60;
  metrics.heartbeats = 70;
  metrics.retransmissions = 80;
  metrics.detector_false_positives = 90;
  metrics.malformed_frames = 100;
  metrics.quarantines = 110;
  metrics.quarantine_drops = 120;
  metrics.journal_appends = 130;
  metrics.journal_checkpoints = 140;
  metrics.journal_replays = 150;
  metrics.store_evictions = 160;
  metrics.peak_learned_nogoods = 170;
  metrics.faults.dropped = 180;
  metrics.faults.duplicated = 190;
  metrics.monitor.violations = 200;
  metrics.monitor.checks = 210;
  metrics.backpressure_drops = 220;

  sim::RunMetrics out;
  net::decode_metrics_words(net::encode_metrics_words(metrics), out);
  EXPECT_EQ(out.messages, 10u);
  EXPECT_EQ(out.total_checks, 20u);
  EXPECT_EQ(out.work_ops, 30u);
  EXPECT_EQ(out.nogoods_generated, 40u);
  EXPECT_EQ(out.redundant_generations, 50u);
  EXPECT_EQ(out.refresh_messages, 60u);
  EXPECT_EQ(out.heartbeats, 70u);
  EXPECT_EQ(out.retransmissions, 80u);
  EXPECT_EQ(out.detector_false_positives, 90u);
  EXPECT_EQ(out.malformed_frames, 100u);
  EXPECT_EQ(out.quarantines, 110u);
  EXPECT_EQ(out.quarantine_drops, 120u);
  EXPECT_EQ(out.journal_appends, 130u);
  EXPECT_EQ(out.journal_checkpoints, 140u);
  EXPECT_EQ(out.journal_replays, 150u);
  EXPECT_EQ(out.store_evictions, 160u);
  EXPECT_EQ(out.peak_learned_nogoods, 170u);
  EXPECT_EQ(out.faults.dropped, 180u);
  EXPECT_EQ(out.faults.duplicated, 190u);
  EXPECT_EQ(out.monitor.violations, 200u);
  EXPECT_EQ(out.monitor.checks, 210u);
  EXPECT_EQ(out.backpressure_drops, 220u);
}

TEST(NetFrame, ShortMetricsWordsLeaveTrailingCountersUntouched) {
  // An older worker reporting fewer counters must not zero the rest.
  sim::RunMetrics out;
  out.monitor.violations = 5;
  net::decode_metrics_words({1, 2}, out);
  EXPECT_EQ(out.messages, 1u);
  EXPECT_EQ(out.total_checks, 2u);
  EXPECT_EQ(out.monitor.violations, 5u);
}

}  // namespace
}  // namespace discsp
