// FaultPlan unit tests: per-channel determinism, counter accounting, config
// validation, and the per-agent crash budget (sim/fault.h).
#include "sim/fault.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace discsp::sim {
namespace {

FaultConfig lossy_config() {
  FaultConfig config;
  config.drop_rate = 0.3;
  config.duplicate_rate = 0.2;
  config.reorder_rate = 0.25;
  config.delay_spike_rate = 0.1;
  config.crash_rate = 0.0;
  config.seed = 1234;
  return config;
}

bool same_verdict(const ChannelVerdict& a, const ChannelVerdict& b) {
  return a.copies == b.copies && a.reorder == b.reorder &&
         a.extra_delay == b.extra_delay;
}

TEST(FaultPlan, ChannelStreamsAreDeterministic) {
  FaultPlan plan_a(lossy_config(), 4);
  FaultPlan plan_b(lossy_config(), 4);
  for (int k = 0; k < 200; ++k) {
    EXPECT_TRUE(same_verdict(plan_a.on_send(0, 1), plan_b.on_send(0, 1)))
        << "send " << k;
  }
}

TEST(FaultPlan, ChannelStreamsAreIndependentOfInterleaving) {
  // The fate of the k-th send on (0, 1) must not depend on traffic between
  // other agent pairs — this is what makes ThreadRuntime fault runs
  // reproducible despite scheduling nondeterminism.
  FaultPlan quiet(lossy_config(), 4);
  FaultPlan busy(lossy_config(), 4);
  std::vector<ChannelVerdict> expected;
  for (int k = 0; k < 100; ++k) expected.push_back(quiet.on_send(0, 1));

  for (int k = 0; k < 100; ++k) {
    busy.on_send(1, 0);
    busy.on_send(2, 3);
    const ChannelVerdict got = busy.on_send(0, 1);
    busy.on_send(3, 2);
    EXPECT_TRUE(same_verdict(got, expected[static_cast<std::size_t>(k)]))
        << "send " << k;
  }
}

TEST(FaultPlan, DifferentChannelsDifferentStreams) {
  FaultPlan plan(lossy_config(), 4);
  int disagreements = 0;
  for (int k = 0; k < 100; ++k) {
    FaultPlan fresh(lossy_config(), 4);
    for (int j = 0; j < k; ++j) {
      fresh.on_send(0, 1);
      fresh.on_send(1, 2);
    }
    if (!same_verdict(fresh.on_send(0, 1), fresh.on_send(1, 2))) ++disagreements;
  }
  EXPECT_GT(disagreements, 0) << "channels (0,1) and (1,2) produced identical "
                                 "fault sequences — streams are not independent";
}

TEST(FaultPlan, SummaryMatchesVerdicts) {
  FaultPlan plan(lossy_config(), 3);
  FaultSummary tally;
  for (int k = 0; k < 500; ++k) {
    const ChannelVerdict v = plan.on_send(k % 3, (k + 1) % 3);
    if (v.copies == 0) ++tally.dropped;
    if (v.copies == 2) ++tally.duplicated;
    if (v.reorder) ++tally.reordered;
    if (v.extra_delay > 0) ++tally.delay_spikes;
  }
  const FaultSummary s = plan.summary();
  EXPECT_EQ(s.dropped, tally.dropped);
  EXPECT_EQ(s.duplicated, tally.duplicated);
  EXPECT_EQ(s.reordered, tally.reordered);
  EXPECT_EQ(s.delay_spikes, tally.delay_spikes);
  EXPECT_EQ(s.crashes, 0u);
  // With these rates and 500 sends, all fault kinds should have fired.
  EXPECT_GT(s.dropped, 0u);
  EXPECT_GT(s.duplicated, 0u);
  EXPECT_GT(s.reordered, 0u);
  EXPECT_GT(s.delay_spikes, 0u);
}

TEST(FaultPlan, DisabledConfigNeverFaults) {
  FaultConfig config;  // all rates zero
  EXPECT_FALSE(config.enabled());
  FaultPlan plan(config, 2);
  for (int k = 0; k < 100; ++k) {
    const ChannelVerdict v = plan.on_send(0, 1);
    EXPECT_EQ(v.copies, 1);
    EXPECT_FALSE(v.reorder);
    EXPECT_EQ(v.extra_delay, 0);
    EXPECT_EQ(plan.on_deliver(1), CrashKind::kNone);
  }
  const FaultSummary s = plan.summary();
  EXPECT_EQ(s.dropped + s.duplicated + s.reordered + s.delay_spikes + s.crashes,
            0u);
}

TEST(FaultPlan, CrashBudgetIsEnforcedPerAgent) {
  FaultConfig config;
  config.crash_rate = 1.0;  // every delivery would crash, but for the budget
  config.max_crashes_per_agent = 3;
  FaultPlan plan(config, 2);
  int crashes_agent0 = 0;
  for (int k = 0; k < 50; ++k) {
    if (plan.on_deliver(0) != CrashKind::kNone) ++crashes_agent0;
  }
  EXPECT_EQ(crashes_agent0, 3);
  // Agent 1 has its own untouched budget.
  int crashes_agent1 = 0;
  for (int k = 0; k < 50; ++k) {
    if (plan.on_deliver(1) != CrashKind::kNone) ++crashes_agent1;
  }
  EXPECT_EQ(crashes_agent1, 3);
  const FaultSummary s = plan.summary();
  EXPECT_EQ(s.crashes, 6u);
  // The per-agent histogram matches the per-agent counts.
  ASSERT_EQ(s.crashes_by_agent.size(), 2u);
  EXPECT_EQ(s.crashes_by_agent[0], 3);
  EXPECT_EQ(s.crashes_by_agent[1], 3);
}

TEST(FaultPlan, AmnesiaSharesTheCrashBudget) {
  FaultConfig config;
  config.crash_rate = 1.0;
  config.amnesia_rate = 1.0;  // both fire every delivery; restart wins ties
  config.max_crashes_per_agent = 4;
  FaultPlan plan(config, 1);
  int restarts = 0, amnesias = 0;
  for (int k = 0; k < 50; ++k) {
    switch (plan.on_deliver(0)) {
      case CrashKind::kRestart: ++restarts; break;
      case CrashKind::kAmnesia: ++amnesias; break;
      case CrashKind::kNone: break;
    }
  }
  // Restart-or-amnesia totals never exceed the shared budget.
  EXPECT_EQ(restarts + amnesias, 4);
  EXPECT_EQ(restarts, 4);  // restart draw happens first and wins at rate 1.0
  const FaultSummary s = plan.summary();
  EXPECT_EQ(s.crashes + s.amnesia, 4u);
  ASSERT_EQ(s.crashes_by_agent.size(), 1u);
  EXPECT_EQ(s.crashes_by_agent[0], 4);
}

TEST(FaultPlan, AmnesiaOnlyConfigCrashesWithAmnesia) {
  FaultConfig config;
  config.amnesia_rate = 1.0;
  config.max_crashes_per_agent = 2;
  EXPECT_TRUE(config.enabled());
  FaultPlan plan(config, 1);
  int amnesias = 0;
  for (int k = 0; k < 10; ++k) {
    if (plan.on_deliver(0) == CrashKind::kAmnesia) ++amnesias;
  }
  EXPECT_EQ(amnesias, 2);
  const FaultSummary s = plan.summary();
  EXPECT_EQ(s.amnesia, 2u);
  EXPECT_EQ(s.crashes, 0u);
  ASSERT_EQ(s.crashes_by_agent.size(), 1u);
  EXPECT_EQ(s.crashes_by_agent[0], 2);
}

TEST(FaultConfig, ValidateRejectsBadKnobs) {
  FaultConfig config;
  config.drop_rate = 1.5;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = {};
  config.duplicate_rate = -0.1;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = {};
  config.crash_rate = 2.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = {};
  config.amnesia_rate = -0.5;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = {};
  config.delay_spike = -1;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = {};
  config.refresh_interval = -5;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = {};
  config.drop_rate = 0.5;
  config.duplicate_rate = 1.0;
  EXPECT_NO_THROW(config.validate());
}

TEST(FaultConfig, FromReproConfigMapsKnobs) {
  ReproConfig repro;
  repro.seed = 99;
  repro.fault_drop = 0.1;
  repro.fault_duplicate = 0.05;
  repro.fault_reorder = 0.2;
  repro.fault_crash = 0.01;
  repro.fault_amnesia = 0.02;
  repro.fault_refresh = 17;
  repro.fault_seed = 0;  // 0 = reuse the run seed
  const FaultConfig config = fault_config_from(repro);
  EXPECT_DOUBLE_EQ(config.drop_rate, 0.1);
  EXPECT_DOUBLE_EQ(config.duplicate_rate, 0.05);
  EXPECT_DOUBLE_EQ(config.reorder_rate, 0.2);
  EXPECT_DOUBLE_EQ(config.crash_rate, 0.01);
  EXPECT_DOUBLE_EQ(config.amnesia_rate, 0.02);
  EXPECT_EQ(config.refresh_interval, 17);
  EXPECT_EQ(config.seed, 99u);
  EXPECT_TRUE(config.enabled());

  repro.fault_seed = 1234;
  EXPECT_EQ(fault_config_from(repro).seed, 1234u);
}

}  // namespace
}  // namespace discsp::sim
