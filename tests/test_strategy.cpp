// Strategy factory: the paper's row labels map to the right strategies.
#include <gtest/gtest.h>

#include "learning/mcs.h"
#include "learning/resolvent.h"
#include "learning/strategy.h"

namespace discsp::learning {
namespace {

TEST(StrategyFactory, CanonicalLabels) {
  EXPECT_EQ(make_strategy("Rslv")->name(), "Rslv");
  EXPECT_EQ(make_strategy("Mcs")->name(), "Mcs");
  EXPECT_EQ(make_strategy("No")->name(), "No");
}

TEST(StrategyFactory, SizeBoundedLabels) {
  EXPECT_EQ(make_strategy("3rdRslv")->name(), "3rdRslv");
  EXPECT_EQ(make_strategy("4thRslv")->name(), "4thRslv");
  EXPECT_EQ(make_strategy("5thRslv")->name(), "5thRslv");
  EXPECT_EQ(make_strategy("1stRslv")->record_bound(), 1u);
  EXPECT_EQ(make_strategy("12thRslv")->record_bound(), 12u);
}

TEST(StrategyFactory, LowercaseAliases) {
  EXPECT_EQ(make_strategy("rslv")->name(), "Rslv");
  EXPECT_EQ(make_strategy("mcs")->name(), "Mcs");
  EXPECT_EQ(make_strategy("none")->name(), "No");
}

TEST(StrategyFactory, RejectsUnknownLabels) {
  EXPECT_THROW(make_strategy(""), std::invalid_argument);
  EXPECT_THROW(make_strategy("bogus"), std::invalid_argument);
  EXPECT_THROW(make_strategy("0thRslv"), std::invalid_argument);
  EXPECT_THROW(make_strategy("3rd"), std::invalid_argument);
}

TEST(StrategyFactory, ProducedTypesAreCorrect) {
  EXPECT_NE(dynamic_cast<ResolventLearning*>(make_strategy("Rslv").get()), nullptr);
  EXPECT_NE(dynamic_cast<McsLearning*>(make_strategy("Mcs").get()), nullptr);
  EXPECT_NE(dynamic_cast<NoLearning*>(make_strategy("No").get()), nullptr);
}

}  // namespace
}  // namespace discsp::learning
