// Convergence tracing: observer wiring and series utilities.
#include <gtest/gtest.h>

#include "analysis/trace.h"
#include "awc/awc_solver.h"
#include "gen/coloring_gen.h"
#include "learning/resolvent.h"

namespace discsp::analysis {
namespace {

TracedRun traced_awc_run(int n, std::uint64_t seed) {
  Rng rng(seed);
  auto inst = gen::generate_coloring3(n, rng);
  const auto dp = gen::distribute(inst);
  awc::AwcSolver solver(dp, learning::ResolventLearning{});
  const auto initial = solver.random_initial(rng);
  // NOTE: run_traced takes the problem by reference; keep it alive via the
  // instance owned by this scope for the duration of the call only.
  return run_traced(inst.problem, solver.make_agents(initial, rng.derive(1)), 10000);
}

TEST(Trace, RecordsOnePointPerCycle) {
  const auto run = traced_awc_run(20, 3);
  ASSERT_TRUE(run.result.metrics.solved);
  EXPECT_EQ(static_cast<int>(run.trace.points().size()), run.result.metrics.cycles);
  for (std::size_t i = 0; i < run.trace.points().size(); ++i) {
    EXPECT_EQ(run.trace.points()[i].cycle, static_cast<int>(i) + 1);
  }
}

TEST(Trace, FinalCycleHasZeroViolations) {
  const auto run = traced_awc_run(20, 4);
  ASSERT_TRUE(run.result.metrics.solved);
  ASSERT_FALSE(run.trace.points().empty());
  EXPECT_EQ(run.trace.points().back().violated_nogoods, 0u);
  EXPECT_EQ(run.trace.last_violated_cycle(),
            static_cast<int>(run.trace.points().size()) - 1)
      << "the penultimate recorded cycle still had violations";
}

TEST(Trace, PeakViolationsIsAnUpperBound) {
  const auto run = traced_awc_run(25, 5);
  const auto peak = run.trace.peak_violations();
  for (const auto& p : run.trace.points()) {
    EXPECT_LE(p.violated_nogoods, peak);
  }
  EXPECT_GT(peak, 0u) << "a random initial assignment violates something";
}

TEST(Trace, DownsampledKeepsEndpointsAndBound) {
  const auto run = traced_awc_run(30, 6);
  const auto& full = run.trace.points();
  ASSERT_GT(full.size(), 8u);
  const auto sampled = run.trace.downsampled(8);
  EXPECT_EQ(sampled.size(), 8u);
  EXPECT_EQ(sampled.front().cycle, full.front().cycle);
  EXPECT_EQ(sampled.back().cycle, full.back().cycle);
  // Downsampling a short series is the identity.
  EXPECT_EQ(run.trace.downsampled(full.size() + 10).size(), full.size());
  EXPECT_EQ(run.trace.downsampled(0).size(), full.size());
}

TEST(Trace, ClearResets) {
  auto run = traced_awc_run(15, 7);
  EXPECT_FALSE(run.trace.points().empty());
  run.trace.clear();
  EXPECT_TRUE(run.trace.points().empty());
  EXPECT_EQ(run.trace.peak_violations(), 0u);
  EXPECT_EQ(run.trace.last_violated_cycle(), 0);
}

}  // namespace
}  // namespace discsp::analysis
