// Cross-algorithm property sweeps over structured topologies: AWC, DB and
// ABT must agree with the centralized solver about solvability wherever
// they claim an answer, across rings, grids and cliques.
#include <gtest/gtest.h>

#include "abt/abt_solver.h"
#include "awc/awc_solver.h"
#include "csp/modeling.h"
#include "csp/validate.h"
#include "db/db_solver.h"
#include "gen/topologies.h"
#include "learning/resolvent.h"
#include "solver/backtracking.h"

namespace discsp {
namespace {

struct TopologyCase {
  const char* name;
  gen::EdgeList edges;
  int n;
  int colors;
  bool solvable;
};

std::vector<TopologyCase> topology_cases() {
  return {
      {"ring7_3c", gen::ring_edges(7), 7, 3, true},
      {"ring8_2c", gen::ring_edges(8), 8, 2, true},
      {"ring7_2c", gen::ring_edges(7), 7, 2, false},
      {"grid3x4_2c", gen::grid_edges(3, 4), 12, 2, true},
      {"grid3x3_3c", gen::grid_edges(3, 3), 9, 3, true},
      {"k4_3c", gen::complete_edges(4), 4, 3, false},
      {"k4_4c", gen::complete_edges(4), 4, 4, true},
      {"k5_4c", gen::complete_edges(5), 5, 4, false},
  };
}

class TopologySweep : public ::testing::TestWithParam<TopologyCase> {};

TEST_P(TopologySweep, GroundTruthMatchesDeclaredSolvability) {
  const auto& tc = GetParam();
  const Problem p = model::coloring_problem(tc.n, tc.colors, tc.edges);
  EXPECT_EQ(solve_backtracking(p).has_value(), tc.solvable);
}

TEST_P(TopologySweep, AwcAgreesWithGroundTruth) {
  const auto& tc = GetParam();
  const Problem p = model::coloring_problem(tc.n, tc.colors, tc.edges);
  const auto dp = DistributedProblem::one_var_per_agent(p);
  awc::AwcSolver solver(dp, learning::ResolventLearning{});
  Rng rng(41);
  const auto result = solver.solve(solver.random_initial(rng), rng.derive(1));
  if (tc.solvable) {
    ASSERT_TRUE(result.metrics.solved);
    EXPECT_TRUE(validate_solution(p, result.assignment).ok);
  } else {
    EXPECT_FALSE(result.metrics.solved);
    EXPECT_TRUE(result.metrics.insoluble)
        << "complete AWC must refute " << tc.name;
  }
}

TEST_P(TopologySweep, AbtAgreesWithGroundTruth) {
  const auto& tc = GetParam();
  const Problem p = model::coloring_problem(tc.n, tc.colors, tc.edges);
  const auto dp = DistributedProblem::one_var_per_agent(p);
  abt::AbtOptions options;
  options.use_resolvent = true;
  abt::AbtSolver solver(dp, options);
  Rng rng(43);
  const auto result = solver.solve(solver.random_initial(rng), rng.derive(1));
  if (tc.solvable) {
    ASSERT_TRUE(result.metrics.solved);
    EXPECT_TRUE(validate_solution(p, result.assignment).ok);
  } else {
    EXPECT_TRUE(result.metrics.insoluble);
  }
}

TEST_P(TopologySweep, DbSolvesTheSolvableOnes) {
  const auto& tc = GetParam();
  if (!tc.solvable) return;  // DB is incomplete by design; nothing to assert
  const Problem p = model::coloring_problem(tc.n, tc.colors, tc.edges);
  const auto dp = DistributedProblem::one_var_per_agent(p);
  db::DbSolver solver(dp);
  Rng rng(47);
  const auto result = solver.solve(solver.random_initial(rng), rng.derive(1));
  ASSERT_TRUE(result.metrics.solved) << tc.name;
  EXPECT_TRUE(validate_solution(p, result.assignment).ok);
}

INSTANTIATE_TEST_SUITE_P(Topologies, TopologySweep,
                         ::testing::ValuesIn(topology_cases()),
                         [](const ::testing::TestParamInfo<TopologyCase>& info) {
                           return std::string(info.param.name);
                         });

}  // namespace
}  // namespace discsp

// Distributed SAT agreement with the DPLL ground truth on small random
// formulas spanning satisfiable and unsatisfiable draws.
#include "gen/topologies.h"
#include "sat/cnf_to_csp.h"
#include "solver/model_counter.h"

namespace discsp {
namespace {

TEST(AwcSatAgreement, MatchesDpllAcrossRandomFormulas) {
  int sat_seen = 0, unsat_seen = 0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    Rng rng(seed);
    // Ratio ~5.5: past the phase transition, so both outcomes occur.
    const auto cnf = gen::random_ksat(10, 55, 3, rng);
    const bool satisfiable = sat::is_satisfiable(cnf);
    (satisfiable ? sat_seen : unsat_seen) += 1;

    const auto dp = sat::to_distributed(cnf);
    awc::AwcSolver solver(dp, learning::ResolventLearning{});
    const auto result = solver.solve(solver.random_initial(rng), rng.derive(1));
    if (satisfiable) {
      ASSERT_TRUE(result.metrics.solved) << "seed " << seed;
      std::vector<Value> model = result.assignment;
      EXPECT_TRUE(cnf.satisfied_by(model)) << "seed " << seed;
    } else {
      EXPECT_FALSE(result.metrics.solved) << "seed " << seed;
      EXPECT_TRUE(result.metrics.insoluble) << "seed " << seed;
    }
  }
  EXPECT_GT(unsat_seen, 0) << "the sweep must include refutation cases";
}

}  // namespace
}  // namespace discsp
