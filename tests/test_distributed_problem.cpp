// DistributedProblem: ownership wiring, agent nogood/neighbor derivation.
#include <gtest/gtest.h>

#include "csp/distributed_problem.h"

namespace discsp {
namespace {

Problem path_problem() {
  // x0 - x1 - x2 chain of difference constraints over {0,1}.
  Problem p;
  p.add_variables(3, 2);
  for (Value v = 0; v < 2; ++v) {
    p.add_nogood(Nogood{{0, v}, {1, v}});
    p.add_nogood(Nogood{{1, v}, {2, v}});
  }
  return p;
}

TEST(DistributedProblem, OneVarPerAgentIdentityMapping) {
  const auto dp = DistributedProblem::one_var_per_agent(path_problem());
  EXPECT_EQ(dp.num_agents(), 3);
  EXPECT_TRUE(dp.is_one_var_per_agent());
  for (AgentId a = 0; a < 3; ++a) {
    EXPECT_EQ(dp.variable_of(a), a);
    EXPECT_EQ(dp.owner_of(a), a);
  }
}

TEST(DistributedProblem, AgentNogoodsAreTheRelevantOnes) {
  const auto dp = DistributedProblem::one_var_per_agent(path_problem());
  EXPECT_EQ(dp.nogoods_of_agent(0).size(), 2u);  // only the x0-x1 pair
  EXPECT_EQ(dp.nogoods_of_agent(1).size(), 4u);  // both constraints
  EXPECT_EQ(dp.nogoods_of_agent(2).size(), 2u);
  for (std::size_t idx : dp.nogoods_of_agent(0)) {
    EXPECT_TRUE(dp.problem().nogoods()[idx].contains(0));
  }
}

TEST(DistributedProblem, NeighborsExcludeSelfAndDeduplicate) {
  const auto dp = DistributedProblem::one_var_per_agent(path_problem());
  EXPECT_EQ(dp.neighbors_of_agent(0), (std::vector<AgentId>{1}));
  EXPECT_EQ(dp.neighbors_of_agent(1), (std::vector<AgentId>{0, 2}));
  EXPECT_EQ(dp.neighbors_of_agent(2), (std::vector<AgentId>{1}));
}

TEST(DistributedProblem, CustomOwnershipMap) {
  // Two agents: agent 0 owns x0 and x2, agent 1 owns x1.
  DistributedProblem dp(path_problem(), {0, 1, 0});
  EXPECT_EQ(dp.num_agents(), 2);
  EXPECT_FALSE(dp.is_one_var_per_agent());
  EXPECT_EQ(dp.variables_of(0), (std::vector<VarId>{0, 2}));
  EXPECT_EQ(dp.variables_of(1), (std::vector<VarId>{1}));
  EXPECT_THROW(dp.variable_of(0), std::logic_error);
  EXPECT_EQ(dp.variable_of(1), 1);
  // All four constraints touch agent 0's variables.
  EXPECT_EQ(dp.nogoods_of_agent(0).size(), 4u);
  EXPECT_EQ(dp.neighbors_of_agent(0), (std::vector<AgentId>{1}));
  EXPECT_EQ(dp.neighbors_of_agent(1), (std::vector<AgentId>{0}));
}

TEST(DistributedProblem, RejectsBadOwnerMaps) {
  EXPECT_THROW(DistributedProblem(path_problem(), {0, 1}), std::invalid_argument);
  EXPECT_THROW(DistributedProblem(path_problem(), {0, -1, 1}), std::invalid_argument);
}

TEST(DistributedProblem, IsolatedVariableHasNoNeighbors) {
  Problem p;
  p.add_variables(2, 2);  // no constraints
  const auto dp = DistributedProblem::one_var_per_agent(std::move(p));
  EXPECT_TRUE(dp.nogoods_of_agent(0).empty());
  EXPECT_TRUE(dp.neighbors_of_agent(0).empty());
}

}  // namespace
}  // namespace discsp
