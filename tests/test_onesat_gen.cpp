// Unique-solution 3SAT generator (the 3ONESAT-GEN stand-in): the defining
// property — exactly one model — is certified by the independent DPLL
// counter; persistence and caching round-trip.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "gen/onesat_gen.h"
#include "solver/model_counter.h"

namespace discsp::gen {
namespace {

TEST(OneSatGen, ExactlyOneModel) {
  Rng rng(1);
  for (int n : {8, 15, 25}) {
    const auto inst = generate_onesat3(n, rng);
    EXPECT_EQ(sat::count_models(inst.cnf, 3), 1u) << "n=" << n;
    EXPECT_TRUE(inst.cnf.satisfied_by(inst.model)) << "n=" << n;
  }
}

TEST(OneSatGen, TheUniqueModelIsThePlantedOne) {
  Rng rng(2);
  const auto inst = generate_onesat3(12, rng);
  const auto models = sat::ModelCounter(inst.cnf).find_models(2);
  ASSERT_EQ(models.size(), 1u);
  EXPECT_EQ(models[0], inst.model);
}

TEST(OneSatGen, ReachesTargetRatioOrRecordsOvershoot) {
  Rng rng(3);
  const auto inst = generate_onesat3(20, rng);
  EXPECT_GE(inst.cnf.num_clauses(), 68u);  // >= round(3.4 * 20)
  EXPECT_NEAR(inst.achieved_ratio,
              static_cast<double>(inst.cnf.num_clauses()) / 20.0, 1e-12);
  EXPECT_GT(inst.elimination_clauses, 0u);
}

TEST(OneSatGen, DeterministicGivenSeed) {
  Rng a(4), b(4);
  const auto i1 = generate_onesat3(10, a);
  const auto i2 = generate_onesat3(10, b);
  EXPECT_EQ(i1.model, i2.model);
  EXPECT_EQ(i1.cnf.num_clauses(), i2.cnf.num_clauses());
}

TEST(OneSatGen, SaveLoadRoundTrip) {
  Rng rng(5);
  const auto inst = generate_onesat3(10, rng);
  const auto path = std::filesystem::temp_directory_path() / "discsp_onesat_test.cnf";
  save_onesat(inst, path.string());
  const auto loaded = load_onesat(path.string());
  EXPECT_EQ(loaded.model, inst.model);
  EXPECT_EQ(loaded.cnf.num_clauses(), inst.cnf.num_clauses());
  EXPECT_EQ(loaded.elimination_clauses, inst.elimination_clauses);
  EXPECT_TRUE(loaded.cnf.satisfied_by(loaded.model));
  std::filesystem::remove(path);
}

TEST(OneSatGen, CachedGenerationHitsTheDisk) {
  const auto dir = std::filesystem::temp_directory_path() / "discsp_onesat_cache_test";
  std::filesystem::remove_all(dir);

  OneSatParams params;
  params.n = 10;
  const auto first = cached_onesat(params, 0, 99, dir.string());
  ASSERT_TRUE(std::filesystem::exists(dir));
  const auto reloaded = cached_onesat(params, 0, 99, dir.string());
  EXPECT_EQ(first.model, reloaded.model);
  EXPECT_EQ(first.cnf.num_clauses(), reloaded.cnf.num_clauses());

  // Distinct instance indices produce distinct instances.
  const auto other = cached_onesat(params, 1, 99, dir.string());
  EXPECT_NE(other.model, first.model);
  std::filesystem::remove_all(dir);
}

TEST(OneSatGen, LoadRejectsFilesWithoutModel) {
  const auto path = std::filesystem::temp_directory_path() / "discsp_bad_onesat.cnf";
  {
    std::FILE* f = std::fopen(path.string().c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("p cnf 2 1\n1 2 0\n", f);
    std::fclose(f);
  }
  EXPECT_THROW(load_onesat(path.string()), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(OneSatGen, RejectsTinyN) {
  Rng rng(6);
  OneSatParams params;
  params.n = 2;
  EXPECT_THROW(generate_onesat(params, rng), std::invalid_argument);
}

}  // namespace
}  // namespace discsp::gen
