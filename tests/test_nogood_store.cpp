// NogoodStore: bucketing, deduplication, and bookkeeping invariants.
#include <gtest/gtest.h>

#include "csp/nogood_store.h"

namespace discsp {
namespace {

TEST(NogoodStore, AddAndBucketLookup) {
  NogoodStore store(0, 3);
  EXPECT_TRUE(store.add(Nogood{{0, 1}, {2, 0}}));
  EXPECT_TRUE(store.add(Nogood{{0, 1}, {3, 2}}));
  EXPECT_TRUE(store.add(Nogood{{0, 2}, {2, 0}}));
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.bucket(0).size(), 0u);
  EXPECT_EQ(store.bucket(1).size(), 2u);
  EXPECT_EQ(store.bucket(2).size(), 1u);
  // Bucket indices resolve to nogoods binding own var to the bucket value.
  for (Value v = 0; v < 3; ++v) {
    for (auto idx : store.bucket(v)) {
      EXPECT_EQ(store.at(idx).value_of(0), v);
    }
  }
}

TEST(NogoodStore, RejectsDuplicates) {
  NogoodStore store(1, 2);
  EXPECT_TRUE(store.add(Nogood{{1, 0}, {5, 1}}));
  EXPECT_FALSE(store.add(Nogood{{5, 1}, {1, 0}}));  // same canonical nogood
  EXPECT_EQ(store.size(), 1u);
}

TEST(NogoodStore, ContainsMatchesAdd) {
  NogoodStore store(0, 2);
  const Nogood a{{0, 0}, {1, 1}};
  EXPECT_FALSE(store.contains(a));
  store.add(a);
  EXPECT_TRUE(store.contains(a));
  EXPECT_FALSE(store.contains(Nogood{{0, 0}, {1, 0}}));
}

TEST(NogoodStore, InitialVsLearnedCounters) {
  NogoodStore store(2, 3);
  store.add(Nogood{{2, 0}, {3, 1}});
  store.add(Nogood{{2, 1}, {3, 1}});
  store.mark_initial();
  EXPECT_EQ(store.initial_count(), 2u);
  EXPECT_EQ(store.learned_count(), 0u);
  store.add(Nogood{{1, 0}, {2, 2}});
  EXPECT_EQ(store.learned_count(), 1u);
}

TEST(NogoodStore, TracksMaxSize) {
  NogoodStore store(0, 2);
  EXPECT_EQ(store.max_nogood_size(), 0u);
  store.add(Nogood{{0, 0}});
  EXPECT_EQ(store.max_nogood_size(), 1u);
  store.add(Nogood{{0, 1}, {1, 0}, {2, 1}});
  EXPECT_EQ(store.max_nogood_size(), 3u);
  store.add(Nogood{{0, 0}, {4, 1}});
  EXPECT_EQ(store.max_nogood_size(), 3u);
}

TEST(NogoodStore, UnaryOwnNogoodAccepted) {
  NogoodStore store(3, 2);
  EXPECT_TRUE(store.add(Nogood{{3, 1}}));
  EXPECT_EQ(store.bucket(1).size(), 1u);
}

TEST(NogoodStore, OutOfDomainValueThrows) {
  NogoodStore store(0, 2);
  EXPECT_THROW(store.add(Nogood{{0, 5}}), std::out_of_range);
}

TEST(NogoodStore, ManyNogoodsKeepBucketsConsistent) {
  NogoodStore store(0, 3);
  std::size_t added = 0;
  for (int other = 1; other <= 40; ++other) {
    for (Value own_v = 0; own_v < 3; ++own_v) {
      for (Value other_v = 0; other_v < 2; ++other_v) {
        if (store.add(Nogood{{0, own_v}, {other, other_v}})) ++added;
      }
    }
  }
  EXPECT_EQ(store.size(), added);
  std::size_t bucket_total = 0;
  for (Value v = 0; v < 3; ++v) bucket_total += store.bucket(v).size();
  EXPECT_EQ(bucket_total, store.size());
}

}  // namespace
}  // namespace discsp
