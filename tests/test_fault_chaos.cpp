// Chaos property tests: the hardened AWC/DB protocols must keep their
// guarantees when the fault layer (sim/fault.h) drops, duplicates and
// reorders messages or crash-restarts agents.
//
// Key properties:
//  - solutions reported under faults always validate (no phantom success);
//  - a solvable instance is never reported insoluble (faults must not fake
//    an empty nogood);
//  - the ISSUE acceptance bar: 10% drop + 5% duplication on n=30 3-coloring,
//    AWC with resolvent learning still solves >= 95% of trials;
//  - an insoluble instance is still *proved* insoluble under drops (the
//    heartbeat repairs lost nogood messages);
//  - fault-free FaultConfig is bit-identical to no fault layer at all.
#include <gtest/gtest.h>

#include <memory>

#include "awc/awc_solver.h"
#include "csp/distributed_problem.h"
#include "csp/validate.h"
#include "db/db_solver.h"
#include "gen/coloring_gen.h"
#include "learning/resolvent.h"
#include "sim/async_engine.h"
#include "sim/thread_runtime.h"

namespace discsp {
namespace {

sim::RunResult run_awc_async(const DistributedProblem& dp,
                             const FullAssignment& initial, std::uint64_t seed,
                             const sim::FaultConfig& faults,
                             std::uint64_t max_activations = 2'000'000) {
  awc::AwcSolver solver(dp, learning::ResolventLearning{});
  sim::AsyncConfig config;
  config.max_activations = max_activations;
  config.faults = faults;
  Rng rng(seed);
  sim::AsyncEngine engine(dp.problem(), solver.make_agents(initial, rng.derive(1)),
                          config, rng.derive(2));
  return engine.run();
}

TEST(FaultChaos, AcceptanceBarDropAndDuplicate) {
  // ISSUE acceptance criterion: under 10% drop + 5% duplication with fixed
  // seeds, AWC/resolvent solves >= 95% of n=30 3-coloring trials, each
  // reported solution validates, and fault counters surface in the metrics.
  constexpr int kTrials = 20;
  int solved = 0;
  bool counters_seen = false;
  for (int t = 0; t < kTrials; ++t) {
    const std::uint64_t seed = 1000 + static_cast<std::uint64_t>(t);
    Rng rng(seed);
    const auto instance = gen::generate_coloring3(30, rng);
    const auto dp = gen::distribute(instance);
    FullAssignment initial(30);
    for (auto& v : initial) v = static_cast<Value>(rng.index(3));

    sim::FaultConfig faults;
    faults.drop_rate = 0.10;
    faults.duplicate_rate = 0.05;
    faults.refresh_interval = 50;
    faults.seed = seed * 31 + 7;

    const sim::RunResult result = run_awc_async(dp, initial, seed, faults);
    EXPECT_FALSE(result.metrics.insoluble) << "trial " << t;
    if (result.metrics.faults.dropped > 0 && result.metrics.faults.duplicated > 0) {
      counters_seen = true;
    }
    if (result.metrics.solved) {
      ++solved;
      EXPECT_TRUE(validate_solution(instance.problem, result.assignment).ok)
          << "trial " << t;
    }
  }
  EXPECT_GE(solved, (kTrials * 95 + 99) / 100)
      << "solve rate under 10% drop + 5% duplication fell below 95%";
  EXPECT_TRUE(counters_seen) << "fault counters never surfaced in RunMetrics";
}

TEST(FaultChaos, SweepNeverFakesInsolubility) {
  // Across a grid of fault rates and seeds, a solvable coloring instance
  // must never be "proved" insoluble, and any solution must validate.
  const struct {
    double drop, duplicate, reorder;
  } points[] = {
      {0.05, 0.0, 0.0}, {0.0, 0.2, 0.0}, {0.0, 0.0, 0.3}, {0.1, 0.1, 0.1},
  };
  for (const auto& pt : points) {
    for (std::uint64_t seed : {11u, 22u, 33u}) {
      Rng rng(seed);
      const auto instance = gen::generate_coloring3(12, rng);
      const auto dp = gen::distribute(instance);
      FullAssignment initial(12);
      for (auto& v : initial) v = static_cast<Value>(rng.index(3));

      sim::FaultConfig faults;
      faults.drop_rate = pt.drop;
      faults.duplicate_rate = pt.duplicate;
      faults.reorder_rate = pt.reorder;
      faults.refresh_interval = 40;
      faults.seed = seed + 5;

      const sim::RunResult result = run_awc_async(dp, initial, seed, faults);
      ASSERT_FALSE(result.metrics.insoluble)
          << "solvable instance reported insoluble at drop=" << pt.drop
          << " dup=" << pt.duplicate << " reorder=" << pt.reorder
          << " seed=" << seed;
      if (result.metrics.solved) {
        EXPECT_TRUE(validate_solution(instance.problem, result.assignment).ok);
      }
    }
  }
}

TEST(FaultChaos, InsolubilityStillProvedUnderDrops) {
  // K4 with 3 colors is insoluble; resolvent learning derives the empty
  // nogood. Dropped nogood messages would deadlock the derivation were it
  // not for the heartbeat re-sending the last generated nogood.
  Problem p;
  p.add_variables(4, 3);
  for (VarId u = 0; u < 4; ++u) {
    for (VarId v = static_cast<VarId>(u + 1); v < 4; ++v) {
      for (Value c = 0; c < 3; ++c) p.add_nogood(Nogood{{u, c}, {v, c}});
    }
  }
  const auto dp = DistributedProblem::one_var_per_agent(p);
  for (std::uint64_t seed : {3u, 17u, 29u}) {
    FullAssignment initial{0, 1, 2, 0};
    sim::FaultConfig faults;
    faults.drop_rate = 0.15;
    faults.refresh_interval = 25;
    faults.seed = seed;
    const sim::RunResult result = run_awc_async(dp, initial, seed, faults);
    EXPECT_TRUE(result.metrics.insoluble) << "seed " << seed;
    EXPECT_FALSE(result.metrics.solved) << "seed " << seed;
  }
}

TEST(FaultChaos, CrashRestartsStillSolve) {
  Rng rng(404);
  const auto instance = gen::generate_coloring3(15, rng);
  const auto dp = gen::distribute(instance);
  FullAssignment initial(15);
  for (auto& v : initial) v = static_cast<Value>(rng.index(3));

  sim::FaultConfig faults;
  faults.crash_rate = 0.002;
  faults.max_crashes_per_agent = 2;
  faults.refresh_interval = 50;
  faults.seed = 9;
  const sim::RunResult result = run_awc_async(dp, initial, 404, faults);
  ASSERT_TRUE(result.metrics.solved);
  EXPECT_TRUE(validate_solution(instance.problem, result.assignment).ok);
  EXPECT_GT(result.metrics.faults.crashes, 0u);
}

TEST(FaultChaos, DbSolvesUnderDuplicationAndReordering) {
  // DB's two-wave protocol desynchronizes under duplicates when waves are
  // counted by arrival; the round-based accounting must not.
  Rng rng(77);
  const auto instance = gen::generate_coloring3(12, rng);
  const auto dp = gen::distribute(instance);
  FullAssignment initial(12);
  for (auto& v : initial) v = static_cast<Value>(rng.index(3));

  db::DbSolver solver(dp);
  sim::AsyncConfig config;
  config.max_activations = 2'000'000;
  config.faults.duplicate_rate = 0.2;
  config.faults.reorder_rate = 0.2;
  config.faults.refresh_interval = 60;
  config.faults.seed = 5151;
  sim::AsyncEngine engine(dp.problem(), solver.make_agents(initial, rng.derive(1)),
                          config, rng.derive(2));
  const sim::RunResult result = engine.run();
  ASSERT_TRUE(result.metrics.solved);
  EXPECT_TRUE(validate_solution(instance.problem, result.assignment).ok);
  EXPECT_GT(result.metrics.faults.duplicated, 0u);
}

TEST(FaultChaos, ThreadRuntimeCreditTerminationUnderDuplication) {
  // Duplication only, refresh disabled: every duplicate must carry its own
  // credit share, and Mattern recovery must still terminate cleanly with the
  // full credit returned.
  Rng rng(88);
  const auto instance = gen::generate_coloring3(10, rng);
  const auto dp = gen::distribute(instance);
  awc::AwcSolver solver(dp, learning::ResolventLearning{});
  const FullAssignment initial = solver.random_initial(rng);

  sim::ThreadRuntimeConfig config;
  config.use_credit_termination = true;
  config.faults.duplicate_rate = 0.25;
  config.faults.refresh_interval = 0;  // classic quiescence path
  config.faults.seed = 42;
  sim::ThreadRuntime runtime(dp.problem(), solver.make_agents(initial, rng.derive(1)),
                             config);
  const sim::RunResult result = runtime.run();
  ASSERT_TRUE(result.metrics.solved);
  EXPECT_TRUE(validate_solution(instance.problem, result.assignment).ok);
  EXPECT_TRUE(runtime.credit_fully_recovered());
  EXPECT_GT(result.metrics.faults.duplicated, 0u);
}

TEST(FaultChaos, ThreadRuntimeSolvesUnderDrops) {
  Rng rng(99);
  const auto instance = gen::generate_coloring3(10, rng);
  const auto dp = gen::distribute(instance);
  awc::AwcSolver solver(dp, learning::ResolventLearning{});
  const FullAssignment initial = solver.random_initial(rng);

  sim::ThreadRuntimeConfig config;
  config.faults.drop_rate = 0.1;
  config.faults.refresh_interval = 20;  // ms
  config.faults.seed = 7;
  sim::ThreadRuntime runtime(dp.problem(), solver.make_agents(initial, rng.derive(1)),
                             config);
  const sim::RunResult result = runtime.run();
  ASSERT_TRUE(result.metrics.solved);
  EXPECT_TRUE(validate_solution(instance.problem, result.assignment).ok);
}

TEST(FaultChaos, DisabledFaultConfigIsBitIdentical) {
  // The acceptance criterion's "bit-identical when disabled": passing an
  // all-zero FaultConfig must leave cycles, maxcck and messages exactly as
  // an engine with no fault layer at all.
  Rng rng(123);
  const auto instance = gen::generate_coloring3(14, rng);
  const auto dp = gen::distribute(instance);
  awc::AwcSolver solver(dp, learning::ResolventLearning{});
  const FullAssignment initial = solver.random_initial(rng);

  sim::AsyncConfig plain;
  sim::AsyncConfig zeroed;
  zeroed.faults = sim::FaultConfig{};  // explicit but disabled
  ASSERT_FALSE(zeroed.faults.enabled());

  sim::AsyncEngine engine_a(dp.problem(), solver.make_agents(initial, rng.derive(1)),
                            plain, Rng(555));
  sim::AsyncEngine engine_b(dp.problem(), solver.make_agents(initial, rng.derive(1)),
                            zeroed, Rng(555));
  const sim::RunResult a = engine_a.run();
  const sim::RunResult b = engine_b.run();
  EXPECT_EQ(a.metrics.cycles, b.metrics.cycles);
  EXPECT_EQ(a.metrics.maxcck, b.metrics.maxcck);
  EXPECT_EQ(a.metrics.messages, b.metrics.messages);
  EXPECT_EQ(a.metrics.total_checks, b.metrics.total_checks);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(b.metrics.heartbeats, 0u);
  EXPECT_EQ(b.metrics.refresh_messages, 0u);
}

}  // namespace
}  // namespace discsp
