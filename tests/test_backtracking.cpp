// Centralized backtracking solver: correctness and counting ground truth.
#include <gtest/gtest.h>

#include "solver/backtracking.h"

namespace discsp {
namespace {

Problem coloring_cycle(int n, int colors) {
  Problem p;
  p.add_variables(n, colors);
  for (VarId u = 0; u < n; ++u) {
    const VarId v = static_cast<VarId>((u + 1) % n);
    for (Value c = 0; c < colors; ++c) p.add_nogood(Nogood{{u, c}, {v, c}});
  }
  return p;
}

TEST(Backtracking, SolvesAndValidates) {
  const Problem p = coloring_cycle(6, 3);
  const auto solution = solve_backtracking(p);
  ASSERT_TRUE(solution.has_value());
  EXPECT_TRUE(p.is_solution(*solution));
}

TEST(Backtracking, DetectsUnsat) {
  const Problem p = coloring_cycle(3, 2);  // odd cycle, 2 colors
  EXPECT_FALSE(solve_backtracking(p).has_value());
  EXPECT_EQ(count_solutions(p), 0u);
}

TEST(Backtracking, CountsExactly) {
  // Proper 2-colorings of an even cycle: exactly 2.
  EXPECT_EQ(count_solutions(coloring_cycle(4, 2)), 2u);
  EXPECT_EQ(count_solutions(coloring_cycle(6, 2)), 2u);
  // Chromatic polynomial of a cycle: (k-1)^n + (-1)^n (k-1); C5, k=3: 30.
  EXPECT_EQ(count_solutions(coloring_cycle(5, 3)), 30u);
}

TEST(Backtracking, CountWithLimitSaturates) {
  const Problem p = coloring_cycle(5, 3);
  EXPECT_EQ(count_solutions(p, 1), 1u);
  EXPECT_EQ(count_solutions(p, 7), 7u);
  EXPECT_EQ(count_solutions(p, 1000), 30u);
}

TEST(Backtracking, UnconstrainedCountsDomainProduct) {
  Problem p;
  p.add_variables(3, 3);
  EXPECT_EQ(count_solutions(p), 27u);
}

TEST(Backtracking, EmptyNogoodMeansNoSolutions) {
  Problem p;
  p.add_variables(2, 2);
  p.add_nogood(Nogood{});
  EXPECT_EQ(count_solutions(p), 0u);
  EXPECT_FALSE(solve_backtracking(p).has_value());
}

TEST(Backtracking, UnaryNogoodsPruneValues) {
  Problem p;
  p.add_variables(1, 3);
  p.add_nogood(Nogood{{0, 0}});
  p.add_nogood(Nogood{{0, 2}});
  const auto solution = solve_backtracking(p);
  ASSERT_TRUE(solution.has_value());
  EXPECT_EQ((*solution)[0], 1);
  EXPECT_EQ(count_solutions(p), 1u);
}

TEST(Backtracking, StatsAccumulate) {
  const Problem p = coloring_cycle(6, 3);
  BacktrackingSolver solver(p);
  solver.solve();
  EXPECT_GT(solver.stats().nodes, 0u);
  EXPECT_GT(solver.stats().nogood_checks, 0u);
}

}  // namespace
}  // namespace discsp
