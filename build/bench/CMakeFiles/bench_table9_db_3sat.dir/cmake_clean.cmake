file(REMOVE_RECURSE
  "CMakeFiles/bench_table9_db_3sat.dir/bench_table9_db_3sat.cpp.o"
  "CMakeFiles/bench_table9_db_3sat.dir/bench_table9_db_3sat.cpp.o.d"
  "bench_table9_db_3sat"
  "bench_table9_db_3sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_db_3sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
