# Empty compiler generated dependencies file for bench_table9_db_3sat.
# This may be replaced when dependencies are built.
