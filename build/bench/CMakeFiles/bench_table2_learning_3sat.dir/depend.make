# Empty dependencies file for bench_table2_learning_3sat.
# This may be replaced when dependencies are built.
