
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_learning_quality.cpp" "bench/CMakeFiles/bench_ablation_learning_quality.dir/bench_ablation_learning_quality.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_learning_quality.dir/bench_ablation_learning_quality.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/discsp_bench_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/discsp_multi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/discsp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/discsp_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/discsp_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/discsp_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/discsp_awc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/discsp_db.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/discsp_abt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/discsp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/discsp_learning.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/discsp_csp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/discsp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
