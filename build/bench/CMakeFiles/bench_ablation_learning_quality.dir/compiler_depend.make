# Empty compiler generated dependencies file for bench_ablation_learning_quality.
# This may be replaced when dependencies are built.
