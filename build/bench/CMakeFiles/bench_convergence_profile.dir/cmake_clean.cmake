file(REMOVE_RECURSE
  "CMakeFiles/bench_convergence_profile.dir/bench_convergence_profile.cpp.o"
  "CMakeFiles/bench_convergence_profile.dir/bench_convergence_profile.cpp.o.d"
  "bench_convergence_profile"
  "bench_convergence_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_convergence_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
