# Empty compiler generated dependencies file for bench_convergence_profile.
# This may be replaced when dependencies are built.
