# Empty compiler generated dependencies file for discsp_bench_harness.
# This may be replaced when dependencies are built.
