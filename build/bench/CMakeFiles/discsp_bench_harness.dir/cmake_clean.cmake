file(REMOVE_RECURSE
  "CMakeFiles/discsp_bench_harness.dir/harness.cpp.o"
  "CMakeFiles/discsp_bench_harness.dir/harness.cpp.o.d"
  "libdiscsp_bench_harness.a"
  "libdiscsp_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discsp_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
