file(REMOVE_RECURSE
  "libdiscsp_bench_harness.a"
)
