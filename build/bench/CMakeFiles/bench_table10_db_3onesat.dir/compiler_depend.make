# Empty compiler generated dependencies file for bench_table10_db_3onesat.
# This may be replaced when dependencies are built.
