file(REMOVE_RECURSE
  "CMakeFiles/bench_table10_db_3onesat.dir/bench_table10_db_3onesat.cpp.o"
  "CMakeFiles/bench_table10_db_3onesat.dir/bench_table10_db_3onesat.cpp.o.d"
  "bench_table10_db_3onesat"
  "bench_table10_db_3onesat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table10_db_3onesat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
