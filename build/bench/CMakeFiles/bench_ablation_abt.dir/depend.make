# Empty dependencies file for bench_ablation_abt.
# This may be replaced when dependencies are built.
