file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_abt.dir/bench_ablation_abt.cpp.o"
  "CMakeFiles/bench_ablation_abt.dir/bench_ablation_abt.cpp.o.d"
  "bench_ablation_abt"
  "bench_ablation_abt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_abt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
