# Empty dependencies file for bench_table8_db_coloring.
# This may be replaced when dependencies are built.
