file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_sizebounded_coloring.dir/bench_table5_sizebounded_coloring.cpp.o"
  "CMakeFiles/bench_table5_sizebounded_coloring.dir/bench_table5_sizebounded_coloring.cpp.o.d"
  "bench_table5_sizebounded_coloring"
  "bench_table5_sizebounded_coloring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_sizebounded_coloring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
