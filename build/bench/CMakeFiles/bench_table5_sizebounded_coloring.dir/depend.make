# Empty dependencies file for bench_table5_sizebounded_coloring.
# This may be replaced when dependencies are built.
