# Empty dependencies file for bench_table6_sizebounded_3sat.
# This may be replaced when dependencies are built.
