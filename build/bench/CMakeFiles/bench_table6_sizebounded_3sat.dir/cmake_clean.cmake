file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_sizebounded_3sat.dir/bench_table6_sizebounded_3sat.cpp.o"
  "CMakeFiles/bench_table6_sizebounded_3sat.dir/bench_table6_sizebounded_3sat.cpp.o.d"
  "bench_table6_sizebounded_3sat"
  "bench_table6_sizebounded_3sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_sizebounded_3sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
