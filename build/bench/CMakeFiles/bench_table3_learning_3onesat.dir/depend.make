# Empty dependencies file for bench_table3_learning_3onesat.
# This may be replaced when dependencies are built.
