file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_learning_3onesat.dir/bench_table3_learning_3onesat.cpp.o"
  "CMakeFiles/bench_table3_learning_3onesat.dir/bench_table3_learning_3onesat.cpp.o.d"
  "bench_table3_learning_3onesat"
  "bench_table3_learning_3onesat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_learning_3onesat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
