# Empty dependencies file for bench_figure2_efficiency.
# This may be replaced when dependencies are built.
