file(REMOVE_RECURSE
  "CMakeFiles/bench_figure2_efficiency.dir/bench_figure2_efficiency.cpp.o"
  "CMakeFiles/bench_figure2_efficiency.dir/bench_figure2_efficiency.cpp.o.d"
  "bench_figure2_efficiency"
  "bench_figure2_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure2_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
