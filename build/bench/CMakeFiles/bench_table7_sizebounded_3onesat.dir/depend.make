# Empty dependencies file for bench_table7_sizebounded_3onesat.
# This may be replaced when dependencies are built.
