# Empty compiler generated dependencies file for bench_table1_learning_coloring.
# This may be replaced when dependencies are built.
