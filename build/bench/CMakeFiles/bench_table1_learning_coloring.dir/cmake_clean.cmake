file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_learning_coloring.dir/bench_table1_learning_coloring.cpp.o"
  "CMakeFiles/bench_table1_learning_coloring.dir/bench_table1_learning_coloring.cpp.o.d"
  "bench_table1_learning_coloring"
  "bench_table1_learning_coloring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_learning_coloring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
