# Empty compiler generated dependencies file for bench_table4_redundant_nogoods.
# This may be replaced when dependencies are built.
