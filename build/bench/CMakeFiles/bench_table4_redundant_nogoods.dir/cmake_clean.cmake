file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_redundant_nogoods.dir/bench_table4_redundant_nogoods.cpp.o"
  "CMakeFiles/bench_table4_redundant_nogoods.dir/bench_table4_redundant_nogoods.cpp.o.d"
  "bench_table4_redundant_nogoods"
  "bench_table4_redundant_nogoods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_redundant_nogoods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
