# Empty dependencies file for bench_ablation_bound_sweep.
# This may be replaced when dependencies are built.
