# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;11;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_meeting_scheduling "/root/repo/build/examples/meeting_scheduling")
set_tests_properties(example_meeting_scheduling PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;12;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_async_demo "/root/repo/build/examples/async_demo" "--n" "16")
set_tests_properties(example_async_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_graph_coloring "/root/repo/build/examples/graph_coloring" "--n" "40")
set_tests_properties(example_graph_coloring PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sat_solving "/root/repo/build/examples/sat_solving" "--generate" "planted" "--n" "40")
set_tests_properties(example_sat_solving PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_n_queens "/root/repo/build/examples/n_queens" "--n" "12")
set_tests_properties(example_n_queens PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_gen "/root/repo/build/examples/discsp_cli" "gen" "coloring" "--n" "24" "--seed" "3" "--out" "/root/repo/build/examples/cli_test.dcsp")
set_tests_properties(cli_gen PROPERTIES  FIXTURES_SETUP "cli_instance" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_solve_awc "/root/repo/build/examples/discsp_cli" "solve" "/root/repo/build/examples/cli_test.dcsp" "--algo" "awc" "--seed" "5")
set_tests_properties(cli_solve_awc PROPERTIES  FIXTURES_REQUIRED "cli_instance" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_solve_db "/root/repo/build/examples/discsp_cli" "solve" "/root/repo/build/examples/cli_test.dcsp" "--algo" "db" "--seed" "5")
set_tests_properties(cli_solve_db PROPERTIES  FIXTURES_REQUIRED "cli_instance" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_solve_abt "/root/repo/build/examples/discsp_cli" "solve" "/root/repo/build/examples/cli_test.dcsp" "--algo" "abt" "--seed" "5")
set_tests_properties(cli_solve_abt PROPERTIES  FIXTURES_REQUIRED "cli_instance" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_gen_sat "/root/repo/build/examples/discsp_cli" "gen" "sat3" "--n" "30" "--seed" "7" "--out" "/root/repo/build/examples/cli_test.cnf")
set_tests_properties(cli_gen_sat PROPERTIES  FIXTURES_SETUP "cli_sat" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;28;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_convert "/root/repo/build/examples/discsp_cli" "convert" "/root/repo/build/examples/cli_test.cnf" "/root/repo/build/examples/cli_test_conv.dcsp")
set_tests_properties(cli_convert PROPERTIES  FIXTURES_REQUIRED "cli_sat" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;31;add_test;/root/repo/examples/CMakeLists.txt;0;")
