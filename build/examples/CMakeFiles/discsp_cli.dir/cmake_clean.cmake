file(REMOVE_RECURSE
  "CMakeFiles/discsp_cli.dir/discsp_cli.cpp.o"
  "CMakeFiles/discsp_cli.dir/discsp_cli.cpp.o.d"
  "discsp_cli"
  "discsp_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discsp_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
