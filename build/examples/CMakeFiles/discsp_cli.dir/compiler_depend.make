# Empty compiler generated dependencies file for discsp_cli.
# This may be replaced when dependencies are built.
