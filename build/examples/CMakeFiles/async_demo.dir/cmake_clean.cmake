file(REMOVE_RECURSE
  "CMakeFiles/async_demo.dir/async_demo.cpp.o"
  "CMakeFiles/async_demo.dir/async_demo.cpp.o.d"
  "async_demo"
  "async_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/async_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
