# Empty dependencies file for async_demo.
# This may be replaced when dependencies are built.
