# Empty compiler generated dependencies file for n_queens.
# This may be replaced when dependencies are built.
