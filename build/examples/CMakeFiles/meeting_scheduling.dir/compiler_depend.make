# Empty compiler generated dependencies file for meeting_scheduling.
# This may be replaced when dependencies are built.
