file(REMOVE_RECURSE
  "CMakeFiles/meeting_scheduling.dir/meeting_scheduling.cpp.o"
  "CMakeFiles/meeting_scheduling.dir/meeting_scheduling.cpp.o.d"
  "meeting_scheduling"
  "meeting_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meeting_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
