file(REMOVE_RECURSE
  "CMakeFiles/sat_solving.dir/sat_solving.cpp.o"
  "CMakeFiles/sat_solving.dir/sat_solving.cpp.o.d"
  "sat_solving"
  "sat_solving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sat_solving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
