# Empty dependencies file for sat_solving.
# This may be replaced when dependencies are built.
