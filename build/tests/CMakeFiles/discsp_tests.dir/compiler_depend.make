# Empty compiler generated dependencies file for discsp_tests.
# This may be replaced when dependencies are built.
