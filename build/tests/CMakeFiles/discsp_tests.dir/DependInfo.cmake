
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_abt.cpp" "tests/CMakeFiles/discsp_tests.dir/test_abt.cpp.o" "gcc" "tests/CMakeFiles/discsp_tests.dir/test_abt.cpp.o.d"
  "/root/repo/tests/test_async_engines.cpp" "tests/CMakeFiles/discsp_tests.dir/test_async_engines.cpp.o" "gcc" "tests/CMakeFiles/discsp_tests.dir/test_async_engines.cpp.o.d"
  "/root/repo/tests/test_async_fifo.cpp" "tests/CMakeFiles/discsp_tests.dir/test_async_fifo.cpp.o" "gcc" "tests/CMakeFiles/discsp_tests.dir/test_async_fifo.cpp.o.d"
  "/root/repo/tests/test_awc.cpp" "tests/CMakeFiles/discsp_tests.dir/test_awc.cpp.o" "gcc" "tests/CMakeFiles/discsp_tests.dir/test_awc.cpp.o.d"
  "/root/repo/tests/test_awc_properties.cpp" "tests/CMakeFiles/discsp_tests.dir/test_awc_properties.cpp.o" "gcc" "tests/CMakeFiles/discsp_tests.dir/test_awc_properties.cpp.o.d"
  "/root/repo/tests/test_awc_protocol.cpp" "tests/CMakeFiles/discsp_tests.dir/test_awc_protocol.cpp.o" "gcc" "tests/CMakeFiles/discsp_tests.dir/test_awc_protocol.cpp.o.d"
  "/root/repo/tests/test_backtracking.cpp" "tests/CMakeFiles/discsp_tests.dir/test_backtracking.cpp.o" "gcc" "tests/CMakeFiles/discsp_tests.dir/test_backtracking.cpp.o.d"
  "/root/repo/tests/test_cnf.cpp" "tests/CMakeFiles/discsp_tests.dir/test_cnf.cpp.o" "gcc" "tests/CMakeFiles/discsp_tests.dir/test_cnf.cpp.o.d"
  "/root/repo/tests/test_cnf_to_csp.cpp" "tests/CMakeFiles/discsp_tests.dir/test_cnf_to_csp.cpp.o" "gcc" "tests/CMakeFiles/discsp_tests.dir/test_cnf_to_csp.cpp.o.d"
  "/root/repo/tests/test_coloring_gen.cpp" "tests/CMakeFiles/discsp_tests.dir/test_coloring_gen.cpp.o" "gcc" "tests/CMakeFiles/discsp_tests.dir/test_coloring_gen.cpp.o.d"
  "/root/repo/tests/test_db.cpp" "tests/CMakeFiles/discsp_tests.dir/test_db.cpp.o" "gcc" "tests/CMakeFiles/discsp_tests.dir/test_db.cpp.o.d"
  "/root/repo/tests/test_db_protocol.cpp" "tests/CMakeFiles/discsp_tests.dir/test_db_protocol.cpp.o" "gcc" "tests/CMakeFiles/discsp_tests.dir/test_db_protocol.cpp.o.d"
  "/root/repo/tests/test_dimacs.cpp" "tests/CMakeFiles/discsp_tests.dir/test_dimacs.cpp.o" "gcc" "tests/CMakeFiles/discsp_tests.dir/test_dimacs.cpp.o.d"
  "/root/repo/tests/test_distributed_problem.cpp" "tests/CMakeFiles/discsp_tests.dir/test_distributed_problem.cpp.o" "gcc" "tests/CMakeFiles/discsp_tests.dir/test_distributed_problem.cpp.o.d"
  "/root/repo/tests/test_efficiency.cpp" "tests/CMakeFiles/discsp_tests.dir/test_efficiency.cpp.o" "gcc" "tests/CMakeFiles/discsp_tests.dir/test_efficiency.cpp.o.d"
  "/root/repo/tests/test_experiment.cpp" "tests/CMakeFiles/discsp_tests.dir/test_experiment.cpp.o" "gcc" "tests/CMakeFiles/discsp_tests.dir/test_experiment.cpp.o.d"
  "/root/repo/tests/test_mcs.cpp" "tests/CMakeFiles/discsp_tests.dir/test_mcs.cpp.o" "gcc" "tests/CMakeFiles/discsp_tests.dir/test_mcs.cpp.o.d"
  "/root/repo/tests/test_message.cpp" "tests/CMakeFiles/discsp_tests.dir/test_message.cpp.o" "gcc" "tests/CMakeFiles/discsp_tests.dir/test_message.cpp.o.d"
  "/root/repo/tests/test_model_counter.cpp" "tests/CMakeFiles/discsp_tests.dir/test_model_counter.cpp.o" "gcc" "tests/CMakeFiles/discsp_tests.dir/test_model_counter.cpp.o.d"
  "/root/repo/tests/test_modeling.cpp" "tests/CMakeFiles/discsp_tests.dir/test_modeling.cpp.o" "gcc" "tests/CMakeFiles/discsp_tests.dir/test_modeling.cpp.o.d"
  "/root/repo/tests/test_multi_awc.cpp" "tests/CMakeFiles/discsp_tests.dir/test_multi_awc.cpp.o" "gcc" "tests/CMakeFiles/discsp_tests.dir/test_multi_awc.cpp.o.d"
  "/root/repo/tests/test_nogood.cpp" "tests/CMakeFiles/discsp_tests.dir/test_nogood.cpp.o" "gcc" "tests/CMakeFiles/discsp_tests.dir/test_nogood.cpp.o.d"
  "/root/repo/tests/test_nogood_properties.cpp" "tests/CMakeFiles/discsp_tests.dir/test_nogood_properties.cpp.o" "gcc" "tests/CMakeFiles/discsp_tests.dir/test_nogood_properties.cpp.o.d"
  "/root/repo/tests/test_nogood_store.cpp" "tests/CMakeFiles/discsp_tests.dir/test_nogood_store.cpp.o" "gcc" "tests/CMakeFiles/discsp_tests.dir/test_nogood_store.cpp.o.d"
  "/root/repo/tests/test_onesat_gen.cpp" "tests/CMakeFiles/discsp_tests.dir/test_onesat_gen.cpp.o" "gcc" "tests/CMakeFiles/discsp_tests.dir/test_onesat_gen.cpp.o.d"
  "/root/repo/tests/test_paper_example.cpp" "tests/CMakeFiles/discsp_tests.dir/test_paper_example.cpp.o" "gcc" "tests/CMakeFiles/discsp_tests.dir/test_paper_example.cpp.o.d"
  "/root/repo/tests/test_paper_shape.cpp" "tests/CMakeFiles/discsp_tests.dir/test_paper_shape.cpp.o" "gcc" "tests/CMakeFiles/discsp_tests.dir/test_paper_shape.cpp.o.d"
  "/root/repo/tests/test_problem.cpp" "tests/CMakeFiles/discsp_tests.dir/test_problem.cpp.o" "gcc" "tests/CMakeFiles/discsp_tests.dir/test_problem.cpp.o.d"
  "/root/repo/tests/test_resolvent.cpp" "tests/CMakeFiles/discsp_tests.dir/test_resolvent.cpp.o" "gcc" "tests/CMakeFiles/discsp_tests.dir/test_resolvent.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/discsp_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/discsp_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_sat_gen.cpp" "tests/CMakeFiles/discsp_tests.dir/test_sat_gen.cpp.o" "gcc" "tests/CMakeFiles/discsp_tests.dir/test_sat_gen.cpp.o.d"
  "/root/repo/tests/test_serialize.cpp" "tests/CMakeFiles/discsp_tests.dir/test_serialize.cpp.o" "gcc" "tests/CMakeFiles/discsp_tests.dir/test_serialize.cpp.o.d"
  "/root/repo/tests/test_solver_sweeps.cpp" "tests/CMakeFiles/discsp_tests.dir/test_solver_sweeps.cpp.o" "gcc" "tests/CMakeFiles/discsp_tests.dir/test_solver_sweeps.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/discsp_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/discsp_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_strategy.cpp" "tests/CMakeFiles/discsp_tests.dir/test_strategy.cpp.o" "gcc" "tests/CMakeFiles/discsp_tests.dir/test_strategy.cpp.o.d"
  "/root/repo/tests/test_sync_engine.cpp" "tests/CMakeFiles/discsp_tests.dir/test_sync_engine.cpp.o" "gcc" "tests/CMakeFiles/discsp_tests.dir/test_sync_engine.cpp.o.d"
  "/root/repo/tests/test_table_options.cpp" "tests/CMakeFiles/discsp_tests.dir/test_table_options.cpp.o" "gcc" "tests/CMakeFiles/discsp_tests.dir/test_table_options.cpp.o.d"
  "/root/repo/tests/test_termination.cpp" "tests/CMakeFiles/discsp_tests.dir/test_termination.cpp.o" "gcc" "tests/CMakeFiles/discsp_tests.dir/test_termination.cpp.o.d"
  "/root/repo/tests/test_topologies.cpp" "tests/CMakeFiles/discsp_tests.dir/test_topologies.cpp.o" "gcc" "tests/CMakeFiles/discsp_tests.dir/test_topologies.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/discsp_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/discsp_tests.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_validate.cpp" "tests/CMakeFiles/discsp_tests.dir/test_validate.cpp.o" "gcc" "tests/CMakeFiles/discsp_tests.dir/test_validate.cpp.o.d"
  "/root/repo/tests/test_view_learning.cpp" "tests/CMakeFiles/discsp_tests.dir/test_view_learning.cpp.o" "gcc" "tests/CMakeFiles/discsp_tests.dir/test_view_learning.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/discsp_multi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/discsp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/discsp_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/discsp_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/discsp_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/discsp_awc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/discsp_db.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/discsp_abt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/discsp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/discsp_learning.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/discsp_csp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/discsp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
