file(REMOVE_RECURSE
  "libdiscsp_gen.a"
)
