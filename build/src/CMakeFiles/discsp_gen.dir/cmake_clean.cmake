file(REMOVE_RECURSE
  "CMakeFiles/discsp_gen.dir/gen/coloring_gen.cpp.o"
  "CMakeFiles/discsp_gen.dir/gen/coloring_gen.cpp.o.d"
  "CMakeFiles/discsp_gen.dir/gen/onesat_gen.cpp.o"
  "CMakeFiles/discsp_gen.dir/gen/onesat_gen.cpp.o.d"
  "CMakeFiles/discsp_gen.dir/gen/sat_gen.cpp.o"
  "CMakeFiles/discsp_gen.dir/gen/sat_gen.cpp.o.d"
  "CMakeFiles/discsp_gen.dir/gen/topologies.cpp.o"
  "CMakeFiles/discsp_gen.dir/gen/topologies.cpp.o.d"
  "libdiscsp_gen.a"
  "libdiscsp_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discsp_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
