# Empty dependencies file for discsp_gen.
# This may be replaced when dependencies are built.
