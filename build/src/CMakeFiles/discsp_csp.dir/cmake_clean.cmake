file(REMOVE_RECURSE
  "CMakeFiles/discsp_csp.dir/csp/distributed_problem.cpp.o"
  "CMakeFiles/discsp_csp.dir/csp/distributed_problem.cpp.o.d"
  "CMakeFiles/discsp_csp.dir/csp/modeling.cpp.o"
  "CMakeFiles/discsp_csp.dir/csp/modeling.cpp.o.d"
  "CMakeFiles/discsp_csp.dir/csp/nogood.cpp.o"
  "CMakeFiles/discsp_csp.dir/csp/nogood.cpp.o.d"
  "CMakeFiles/discsp_csp.dir/csp/nogood_store.cpp.o"
  "CMakeFiles/discsp_csp.dir/csp/nogood_store.cpp.o.d"
  "CMakeFiles/discsp_csp.dir/csp/problem.cpp.o"
  "CMakeFiles/discsp_csp.dir/csp/problem.cpp.o.d"
  "CMakeFiles/discsp_csp.dir/csp/serialize.cpp.o"
  "CMakeFiles/discsp_csp.dir/csp/serialize.cpp.o.d"
  "CMakeFiles/discsp_csp.dir/csp/validate.cpp.o"
  "CMakeFiles/discsp_csp.dir/csp/validate.cpp.o.d"
  "libdiscsp_csp.a"
  "libdiscsp_csp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discsp_csp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
