# Empty compiler generated dependencies file for discsp_csp.
# This may be replaced when dependencies are built.
