file(REMOVE_RECURSE
  "libdiscsp_csp.a"
)
