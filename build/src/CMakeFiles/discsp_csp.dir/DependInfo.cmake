
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/csp/distributed_problem.cpp" "src/CMakeFiles/discsp_csp.dir/csp/distributed_problem.cpp.o" "gcc" "src/CMakeFiles/discsp_csp.dir/csp/distributed_problem.cpp.o.d"
  "/root/repo/src/csp/modeling.cpp" "src/CMakeFiles/discsp_csp.dir/csp/modeling.cpp.o" "gcc" "src/CMakeFiles/discsp_csp.dir/csp/modeling.cpp.o.d"
  "/root/repo/src/csp/nogood.cpp" "src/CMakeFiles/discsp_csp.dir/csp/nogood.cpp.o" "gcc" "src/CMakeFiles/discsp_csp.dir/csp/nogood.cpp.o.d"
  "/root/repo/src/csp/nogood_store.cpp" "src/CMakeFiles/discsp_csp.dir/csp/nogood_store.cpp.o" "gcc" "src/CMakeFiles/discsp_csp.dir/csp/nogood_store.cpp.o.d"
  "/root/repo/src/csp/problem.cpp" "src/CMakeFiles/discsp_csp.dir/csp/problem.cpp.o" "gcc" "src/CMakeFiles/discsp_csp.dir/csp/problem.cpp.o.d"
  "/root/repo/src/csp/serialize.cpp" "src/CMakeFiles/discsp_csp.dir/csp/serialize.cpp.o" "gcc" "src/CMakeFiles/discsp_csp.dir/csp/serialize.cpp.o.d"
  "/root/repo/src/csp/validate.cpp" "src/CMakeFiles/discsp_csp.dir/csp/validate.cpp.o" "gcc" "src/CMakeFiles/discsp_csp.dir/csp/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/discsp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
