file(REMOVE_RECURSE
  "CMakeFiles/discsp_sim.dir/sim/async_engine.cpp.o"
  "CMakeFiles/discsp_sim.dir/sim/async_engine.cpp.o.d"
  "CMakeFiles/discsp_sim.dir/sim/message.cpp.o"
  "CMakeFiles/discsp_sim.dir/sim/message.cpp.o.d"
  "CMakeFiles/discsp_sim.dir/sim/sync_engine.cpp.o"
  "CMakeFiles/discsp_sim.dir/sim/sync_engine.cpp.o.d"
  "CMakeFiles/discsp_sim.dir/sim/termination.cpp.o"
  "CMakeFiles/discsp_sim.dir/sim/termination.cpp.o.d"
  "CMakeFiles/discsp_sim.dir/sim/thread_runtime.cpp.o"
  "CMakeFiles/discsp_sim.dir/sim/thread_runtime.cpp.o.d"
  "libdiscsp_sim.a"
  "libdiscsp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discsp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
