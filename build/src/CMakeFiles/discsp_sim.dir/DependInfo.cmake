
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/async_engine.cpp" "src/CMakeFiles/discsp_sim.dir/sim/async_engine.cpp.o" "gcc" "src/CMakeFiles/discsp_sim.dir/sim/async_engine.cpp.o.d"
  "/root/repo/src/sim/message.cpp" "src/CMakeFiles/discsp_sim.dir/sim/message.cpp.o" "gcc" "src/CMakeFiles/discsp_sim.dir/sim/message.cpp.o.d"
  "/root/repo/src/sim/sync_engine.cpp" "src/CMakeFiles/discsp_sim.dir/sim/sync_engine.cpp.o" "gcc" "src/CMakeFiles/discsp_sim.dir/sim/sync_engine.cpp.o.d"
  "/root/repo/src/sim/termination.cpp" "src/CMakeFiles/discsp_sim.dir/sim/termination.cpp.o" "gcc" "src/CMakeFiles/discsp_sim.dir/sim/termination.cpp.o.d"
  "/root/repo/src/sim/thread_runtime.cpp" "src/CMakeFiles/discsp_sim.dir/sim/thread_runtime.cpp.o" "gcc" "src/CMakeFiles/discsp_sim.dir/sim/thread_runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/discsp_csp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/discsp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
