file(REMOVE_RECURSE
  "libdiscsp_sim.a"
)
