# Empty compiler generated dependencies file for discsp_sim.
# This may be replaced when dependencies are built.
