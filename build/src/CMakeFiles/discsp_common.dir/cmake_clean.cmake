file(REMOVE_RECURSE
  "CMakeFiles/discsp_common.dir/common/options.cpp.o"
  "CMakeFiles/discsp_common.dir/common/options.cpp.o.d"
  "CMakeFiles/discsp_common.dir/common/rng.cpp.o"
  "CMakeFiles/discsp_common.dir/common/rng.cpp.o.d"
  "CMakeFiles/discsp_common.dir/common/stats.cpp.o"
  "CMakeFiles/discsp_common.dir/common/stats.cpp.o.d"
  "CMakeFiles/discsp_common.dir/common/table.cpp.o"
  "CMakeFiles/discsp_common.dir/common/table.cpp.o.d"
  "libdiscsp_common.a"
  "libdiscsp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discsp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
