file(REMOVE_RECURSE
  "libdiscsp_common.a"
)
