# Empty dependencies file for discsp_common.
# This may be replaced when dependencies are built.
