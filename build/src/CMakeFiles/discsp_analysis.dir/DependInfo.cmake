
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/efficiency.cpp" "src/CMakeFiles/discsp_analysis.dir/analysis/efficiency.cpp.o" "gcc" "src/CMakeFiles/discsp_analysis.dir/analysis/efficiency.cpp.o.d"
  "/root/repo/src/analysis/experiment.cpp" "src/CMakeFiles/discsp_analysis.dir/analysis/experiment.cpp.o" "gcc" "src/CMakeFiles/discsp_analysis.dir/analysis/experiment.cpp.o.d"
  "/root/repo/src/analysis/trace.cpp" "src/CMakeFiles/discsp_analysis.dir/analysis/trace.cpp.o" "gcc" "src/CMakeFiles/discsp_analysis.dir/analysis/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/discsp_awc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/discsp_db.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/discsp_abt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/discsp_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/discsp_learning.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/discsp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/discsp_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/discsp_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/discsp_csp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/discsp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
