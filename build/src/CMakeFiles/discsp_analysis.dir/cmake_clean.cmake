file(REMOVE_RECURSE
  "CMakeFiles/discsp_analysis.dir/analysis/efficiency.cpp.o"
  "CMakeFiles/discsp_analysis.dir/analysis/efficiency.cpp.o.d"
  "CMakeFiles/discsp_analysis.dir/analysis/experiment.cpp.o"
  "CMakeFiles/discsp_analysis.dir/analysis/experiment.cpp.o.d"
  "CMakeFiles/discsp_analysis.dir/analysis/trace.cpp.o"
  "CMakeFiles/discsp_analysis.dir/analysis/trace.cpp.o.d"
  "libdiscsp_analysis.a"
  "libdiscsp_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discsp_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
