# Empty compiler generated dependencies file for discsp_analysis.
# This may be replaced when dependencies are built.
