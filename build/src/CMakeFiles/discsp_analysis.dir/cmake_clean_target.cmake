file(REMOVE_RECURSE
  "libdiscsp_analysis.a"
)
