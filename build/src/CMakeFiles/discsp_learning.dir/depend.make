# Empty dependencies file for discsp_learning.
# This may be replaced when dependencies are built.
