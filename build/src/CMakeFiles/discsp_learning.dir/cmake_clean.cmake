file(REMOVE_RECURSE
  "CMakeFiles/discsp_learning.dir/learning/mcs.cpp.o"
  "CMakeFiles/discsp_learning.dir/learning/mcs.cpp.o.d"
  "CMakeFiles/discsp_learning.dir/learning/resolvent.cpp.o"
  "CMakeFiles/discsp_learning.dir/learning/resolvent.cpp.o.d"
  "CMakeFiles/discsp_learning.dir/learning/strategy.cpp.o"
  "CMakeFiles/discsp_learning.dir/learning/strategy.cpp.o.d"
  "CMakeFiles/discsp_learning.dir/learning/view_learning.cpp.o"
  "CMakeFiles/discsp_learning.dir/learning/view_learning.cpp.o.d"
  "libdiscsp_learning.a"
  "libdiscsp_learning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discsp_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
