file(REMOVE_RECURSE
  "libdiscsp_learning.a"
)
