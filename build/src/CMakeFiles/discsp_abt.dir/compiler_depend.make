# Empty compiler generated dependencies file for discsp_abt.
# This may be replaced when dependencies are built.
