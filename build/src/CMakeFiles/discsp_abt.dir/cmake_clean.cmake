file(REMOVE_RECURSE
  "CMakeFiles/discsp_abt.dir/abt/abt_agent.cpp.o"
  "CMakeFiles/discsp_abt.dir/abt/abt_agent.cpp.o.d"
  "CMakeFiles/discsp_abt.dir/abt/abt_solver.cpp.o"
  "CMakeFiles/discsp_abt.dir/abt/abt_solver.cpp.o.d"
  "libdiscsp_abt.a"
  "libdiscsp_abt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discsp_abt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
