file(REMOVE_RECURSE
  "libdiscsp_abt.a"
)
