file(REMOVE_RECURSE
  "CMakeFiles/discsp_sat.dir/sat/cnf.cpp.o"
  "CMakeFiles/discsp_sat.dir/sat/cnf.cpp.o.d"
  "CMakeFiles/discsp_sat.dir/sat/cnf_to_csp.cpp.o"
  "CMakeFiles/discsp_sat.dir/sat/cnf_to_csp.cpp.o.d"
  "CMakeFiles/discsp_sat.dir/sat/dimacs.cpp.o"
  "CMakeFiles/discsp_sat.dir/sat/dimacs.cpp.o.d"
  "libdiscsp_sat.a"
  "libdiscsp_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discsp_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
