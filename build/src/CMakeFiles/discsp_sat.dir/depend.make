# Empty dependencies file for discsp_sat.
# This may be replaced when dependencies are built.
