file(REMOVE_RECURSE
  "libdiscsp_sat.a"
)
