
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sat/cnf.cpp" "src/CMakeFiles/discsp_sat.dir/sat/cnf.cpp.o" "gcc" "src/CMakeFiles/discsp_sat.dir/sat/cnf.cpp.o.d"
  "/root/repo/src/sat/cnf_to_csp.cpp" "src/CMakeFiles/discsp_sat.dir/sat/cnf_to_csp.cpp.o" "gcc" "src/CMakeFiles/discsp_sat.dir/sat/cnf_to_csp.cpp.o.d"
  "/root/repo/src/sat/dimacs.cpp" "src/CMakeFiles/discsp_sat.dir/sat/dimacs.cpp.o" "gcc" "src/CMakeFiles/discsp_sat.dir/sat/dimacs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/discsp_csp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/discsp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
