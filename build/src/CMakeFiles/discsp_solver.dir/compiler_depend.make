# Empty compiler generated dependencies file for discsp_solver.
# This may be replaced when dependencies are built.
