file(REMOVE_RECURSE
  "libdiscsp_solver.a"
)
