file(REMOVE_RECURSE
  "CMakeFiles/discsp_solver.dir/solver/backtracking.cpp.o"
  "CMakeFiles/discsp_solver.dir/solver/backtracking.cpp.o.d"
  "CMakeFiles/discsp_solver.dir/solver/model_counter.cpp.o"
  "CMakeFiles/discsp_solver.dir/solver/model_counter.cpp.o.d"
  "libdiscsp_solver.a"
  "libdiscsp_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discsp_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
