file(REMOVE_RECURSE
  "libdiscsp_multi.a"
)
