# Empty dependencies file for discsp_multi.
# This may be replaced when dependencies are built.
