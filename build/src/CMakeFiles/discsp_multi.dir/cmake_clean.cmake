file(REMOVE_RECURSE
  "CMakeFiles/discsp_multi.dir/multi/multi_awc.cpp.o"
  "CMakeFiles/discsp_multi.dir/multi/multi_awc.cpp.o.d"
  "libdiscsp_multi.a"
  "libdiscsp_multi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discsp_multi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
