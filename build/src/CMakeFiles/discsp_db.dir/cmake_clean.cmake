file(REMOVE_RECURSE
  "CMakeFiles/discsp_db.dir/db/db_agent.cpp.o"
  "CMakeFiles/discsp_db.dir/db/db_agent.cpp.o.d"
  "CMakeFiles/discsp_db.dir/db/db_solver.cpp.o"
  "CMakeFiles/discsp_db.dir/db/db_solver.cpp.o.d"
  "libdiscsp_db.a"
  "libdiscsp_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discsp_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
