file(REMOVE_RECURSE
  "libdiscsp_db.a"
)
