# Empty dependencies file for discsp_db.
# This may be replaced when dependencies are built.
