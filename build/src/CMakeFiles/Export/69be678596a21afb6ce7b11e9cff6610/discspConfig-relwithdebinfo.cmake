#----------------------------------------------------------------
# Generated CMake target import file for configuration "RelWithDebInfo".
#----------------------------------------------------------------

# Commands may need to know the format version.
set(CMAKE_IMPORT_FILE_VERSION 1)

# Import target "discsp::discsp_common" for configuration "RelWithDebInfo"
set_property(TARGET discsp::discsp_common APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(discsp::discsp_common PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libdiscsp_common.a"
  )

list(APPEND _cmake_import_check_targets discsp::discsp_common )
list(APPEND _cmake_import_check_files_for_discsp::discsp_common "${_IMPORT_PREFIX}/lib/libdiscsp_common.a" )

# Import target "discsp::discsp_csp" for configuration "RelWithDebInfo"
set_property(TARGET discsp::discsp_csp APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(discsp::discsp_csp PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libdiscsp_csp.a"
  )

list(APPEND _cmake_import_check_targets discsp::discsp_csp )
list(APPEND _cmake_import_check_files_for_discsp::discsp_csp "${_IMPORT_PREFIX}/lib/libdiscsp_csp.a" )

# Import target "discsp::discsp_sat" for configuration "RelWithDebInfo"
set_property(TARGET discsp::discsp_sat APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(discsp::discsp_sat PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libdiscsp_sat.a"
  )

list(APPEND _cmake_import_check_targets discsp::discsp_sat )
list(APPEND _cmake_import_check_files_for_discsp::discsp_sat "${_IMPORT_PREFIX}/lib/libdiscsp_sat.a" )

# Import target "discsp::discsp_solver" for configuration "RelWithDebInfo"
set_property(TARGET discsp::discsp_solver APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(discsp::discsp_solver PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libdiscsp_solver.a"
  )

list(APPEND _cmake_import_check_targets discsp::discsp_solver )
list(APPEND _cmake_import_check_files_for_discsp::discsp_solver "${_IMPORT_PREFIX}/lib/libdiscsp_solver.a" )

# Import target "discsp::discsp_gen" for configuration "RelWithDebInfo"
set_property(TARGET discsp::discsp_gen APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(discsp::discsp_gen PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libdiscsp_gen.a"
  )

list(APPEND _cmake_import_check_targets discsp::discsp_gen )
list(APPEND _cmake_import_check_files_for_discsp::discsp_gen "${_IMPORT_PREFIX}/lib/libdiscsp_gen.a" )

# Import target "discsp::discsp_sim" for configuration "RelWithDebInfo"
set_property(TARGET discsp::discsp_sim APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(discsp::discsp_sim PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libdiscsp_sim.a"
  )

list(APPEND _cmake_import_check_targets discsp::discsp_sim )
list(APPEND _cmake_import_check_files_for_discsp::discsp_sim "${_IMPORT_PREFIX}/lib/libdiscsp_sim.a" )

# Import target "discsp::discsp_learning" for configuration "RelWithDebInfo"
set_property(TARGET discsp::discsp_learning APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(discsp::discsp_learning PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libdiscsp_learning.a"
  )

list(APPEND _cmake_import_check_targets discsp::discsp_learning )
list(APPEND _cmake_import_check_files_for_discsp::discsp_learning "${_IMPORT_PREFIX}/lib/libdiscsp_learning.a" )

# Import target "discsp::discsp_awc" for configuration "RelWithDebInfo"
set_property(TARGET discsp::discsp_awc APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(discsp::discsp_awc PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libdiscsp_awc.a"
  )

list(APPEND _cmake_import_check_targets discsp::discsp_awc )
list(APPEND _cmake_import_check_files_for_discsp::discsp_awc "${_IMPORT_PREFIX}/lib/libdiscsp_awc.a" )

# Import target "discsp::discsp_db" for configuration "RelWithDebInfo"
set_property(TARGET discsp::discsp_db APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(discsp::discsp_db PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libdiscsp_db.a"
  )

list(APPEND _cmake_import_check_targets discsp::discsp_db )
list(APPEND _cmake_import_check_files_for_discsp::discsp_db "${_IMPORT_PREFIX}/lib/libdiscsp_db.a" )

# Import target "discsp::discsp_abt" for configuration "RelWithDebInfo"
set_property(TARGET discsp::discsp_abt APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(discsp::discsp_abt PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libdiscsp_abt.a"
  )

list(APPEND _cmake_import_check_targets discsp::discsp_abt )
list(APPEND _cmake_import_check_files_for_discsp::discsp_abt "${_IMPORT_PREFIX}/lib/libdiscsp_abt.a" )

# Import target "discsp::discsp_multi" for configuration "RelWithDebInfo"
set_property(TARGET discsp::discsp_multi APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(discsp::discsp_multi PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libdiscsp_multi.a"
  )

list(APPEND _cmake_import_check_targets discsp::discsp_multi )
list(APPEND _cmake_import_check_files_for_discsp::discsp_multi "${_IMPORT_PREFIX}/lib/libdiscsp_multi.a" )

# Import target "discsp::discsp_analysis" for configuration "RelWithDebInfo"
set_property(TARGET discsp::discsp_analysis APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(discsp::discsp_analysis PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libdiscsp_analysis.a"
  )

list(APPEND _cmake_import_check_targets discsp::discsp_analysis )
list(APPEND _cmake_import_check_files_for_discsp::discsp_analysis "${_IMPORT_PREFIX}/lib/libdiscsp_analysis.a" )

# Commands beyond this point should not need to know the version.
set(CMAKE_IMPORT_FILE_VERSION)
