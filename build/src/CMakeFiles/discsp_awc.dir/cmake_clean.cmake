file(REMOVE_RECURSE
  "CMakeFiles/discsp_awc.dir/awc/awc_agent.cpp.o"
  "CMakeFiles/discsp_awc.dir/awc/awc_agent.cpp.o.d"
  "CMakeFiles/discsp_awc.dir/awc/awc_solver.cpp.o"
  "CMakeFiles/discsp_awc.dir/awc/awc_solver.cpp.o.d"
  "libdiscsp_awc.a"
  "libdiscsp_awc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discsp_awc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
