# Empty compiler generated dependencies file for discsp_awc.
# This may be replaced when dependencies are built.
