file(REMOVE_RECURSE
  "libdiscsp_awc.a"
)
